// Package exec is the out-of-core execution engine: it interprets a
// concrete plan (codegen.Plan) against a disk backend, performing the
// plan's reads, writes, buffer initializations, and intra-tile compute
// blocks. In data mode it produces numerically verifiable results; in
// dry-run mode it executes only the I/O structure, which scales to the
// paper's array sizes and yields the "measured" disk I/O times of the
// evaluation.
package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/tensor"
)

// Options control a run.
type Options struct {
	// DryRun skips compute and data movement, executing only the I/O
	// structure against a cost-only backend.
	DryRun bool
	// Workers > 1 parallelizes intra-tile compute blocks across
	// goroutines (the engine's stand-in for the collective in-memory
	// kernels of the paper's GA-based code). Results are bit-identical to
	// serial execution: the split dimension always indexes the output
	// buffer, so workers write disjoint elements, and per-element
	// accumulation order is unchanged.
	Workers int
	// OpenInputs opens the plan's input arrays on the backend instead of
	// creating and staging them — the library-adoption path where data
	// already lives on disk. Extents must match the plan; the inputs
	// argument of Run is ignored.
	OpenInputs bool
	// NoFetch leaves outputs on disk instead of reading them back into
	// Result.Outputs; required when outputs are too large for memory.
	NoFetch bool
	// StopAfter, when positive, aborts the run after that many top-level
	// work units (top-level body items, counting each iteration of a
	// top-level loop) and reports the reached checkpoint — simulating a
	// crash or scheduled preemption at a safe boundary.
	StopAfter int64
	// Resume skips work completed before the checkpoint of an earlier
	// (interrupted) run against the same persistent backend. Inputs must
	// not be re-staged: combine with OpenInputs and a backend holding the
	// interrupted run's state.
	Resume *Checkpoint
	// Pipeline enables the asynchronous double-buffered engine: disk reads
	// are prefetched and writes retired in the background while compute
	// blocks run, with hazard tracking keeping results bit-identical to the
	// serial interpreter. A barrier at every top-level work-unit boundary
	// preserves StopAfter/Resume semantics. Result.Pipeline reports the
	// modelled serial vs overlapped critical-path times.
	Pipeline bool
	// PipelineDepth bounds in-flight asynchronous disk operations
	// (default 4).
	PipelineDepth int
	// Metrics, if non-nil, receives engine instrumentation: prefetch and
	// write-behind counters, in-flight depth, barrier stalls, and buffer
	// memory watermarks. Attach the same registry to the disk backend
	// (disk.AttachMetrics) for a combined snapshot.
	Metrics *obs.Registry
	// Retry, if non-nil, retries transient section-I/O faults (typed
	// *disk.IOError values with Transient() true) with capped exponential
	// backoff in both engines. Backoff delays and extra attempts are
	// charged to the modelled timeline, so a retried run's trace still
	// reconciles with the backend's Stats.Time(). Persistent faults are
	// never retried; they abort the run with a *RunError carrying the
	// last completed checkpoint (see RunResilient).
	Retry *disk.RetryPolicy
	// SyncUnits, if true, syncs the backend's durable state (disk.Syncer,
	// reached through wrapper chains via disk.SyncBackend) at every unit
	// boundary BEFORE the checkpoint advances, and once after staging. The
	// ordering is the crash-consistency invariant: a checkpoint is never
	// recorded ahead of the bytes it promises, so a kill at any moment
	// leaves the store recoverable from the last completed checkpoint.
	// RunResilient and ooc set it whenever recovery is enabled; backends
	// without a Sync hook (e.g. the in-memory simulator chain) make it a
	// no-op.
	SyncUnits bool
	// OnUnit, if non-nil, runs after every newly completed top-level
	// work-unit boundary, once the unit's durability sync (SyncUnits)
	// has happened and the checkpoint has advanced — the hook for
	// background maintenance that must interleave at safe boundaries
	// (the health scrub scheduler ticks here). Both engines call it; the
	// pipelined engine drains its in-flight operations at the barrier
	// first. An error aborts the run like an I/O failure.
	OnUnit func() error
	// Tracer, if non-nil, receives the run's modelled timeline as spans:
	// disk operations on the obs "disk" track and compute blocks on the
	// "compute" track, with instant events marking barriers and hazard
	// waits. Serial runs place both tracks on one serial clock; pipelined
	// runs use the two-clock overlapped timeline, so the exported Chrome
	// trace shows prefetch and write-behind riding alongside compute. The
	// disk-track span total equals the backend's modelled disk.Stats.Time()
	// up to floating-point association.
	Tracer *obs.Tracer
	// Log, if non-nil, receives the engine's structured events (system
	// "exec"): io.fault / io.retry per retried operation, and the
	// recovery and integrity-heal record of RunResilient.
	Log *obs.Log
}

// Checkpoint identifies a safe resumption boundary: top-level body item
// Item, iteration Iter of that item if it is a loop. Safe because
// checkpointable plans carry no read-write buffer state across top-level
// loop iterations — all accumulated state is on disk.
type Checkpoint struct {
	Item int64 `json:"item"`
	Iter int64 `json:"iter"`
}

// Checkpointable reports whether a plan supports StopAfter/Resume: its
// top level may contain only loops, zero-init passes, and reads
// (re-executable); a top-level write or buffer zero-fill would mean
// in-memory accumulation lives across top-level iterations.
//
// The property is purely syntactic over Plan.Body and is the contract of
// the engine's work-unit model: each iteration of a top-level loop is one
// unit, every other top-level item its own unit, and a checkpointable
// plan carries no live buffer state from one unit into the next — so a
// run can stop at any unit boundary and a later run can skip completed
// units. The static plan verifier (internal/verify) reuses exactly this
// predicate for its Report.Checkpointable field and enforces the
// underlying no-cross-unit-state property independently as its rule S1.
func Checkpointable(p *codegen.Plan) bool {
	for _, n := range p.Body {
		switch n := n.(type) {
		case *codegen.Loop, *codegen.InitPass:
		case *codegen.IO:
			if !n.Read {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Result reports a run.
type Result struct {
	// Stats are the backend's I/O statistics for the computation (input
	// staging excluded).
	Stats disk.Stats
	// Outputs holds the output arrays read back from disk (nil in
	// dry-run).
	Outputs map[string]*tensor.Tensor
	// PeakBufferBytes is the high-water mark of instantiated buffer
	// memory during execution (0 in dry-run). It never exceeds the plan's
	// static MemoryBytes, which allocates every buffer at full tile
	// extent for the whole run.
	PeakBufferBytes int64
	// Stopped is non-nil when Options.StopAfter interrupted the run; it
	// holds the checkpoint to Resume from. Outputs are not fetched on a
	// stopped run.
	Stopped *Checkpoint
	// Pipeline reports the pipelined engine's modelled timeline (nil unless
	// Options.Pipeline).
	Pipeline *PipelineStats
	// Retry tallies the run's transient-fault handling (all zero unless
	// Options.Retry saw faults).
	Retry RetryStats
	// Recovery reports checkpoint-based restarts (nil unless the run went
	// through RunResilient).
	Recovery *RecoveryReport
}

// RetryStats tallies transient-fault handling during one run.
type RetryStats struct {
	// FaultsSeen counts typed I/O errors observed (including ones that
	// were eventually retried successfully).
	FaultsSeen int64
	// Retries counts retry attempts issued.
	Retries int64
	// RetrySeconds is the extra modelled time spent on retries: backoff
	// delays plus the repeated attempts' I/O time.
	RetrySeconds float64
}

// RunError is the typed failure of a run: it wraps the underlying cause
// (errors.Is/As reach through it, so a *disk.IOError stays visible) and
// carries the state RunResilient needs to restart — the last completed
// checkpoint, I/O statistics and retry tallies up to the failure, and
// the modelled seconds wasted since the last checkpoint boundary.
type RunError struct {
	// Err is the attributed cause.
	Err error
	// Checkpoint is the last completed unit boundary (nil when the plan
	// is not checkpointable).
	Checkpoint *Checkpoint
	// Staged reports whether input staging completed; a restart is only
	// meaningful when it did (the arrays exist on the backend).
	Staged bool
	// WastedSeconds is the modelled I/O time spent past the last
	// checkpoint boundary — work a restart repeats.
	WastedSeconds float64
	// Stats is the backend's modelled I/O accounting up to the failure.
	Stats disk.Stats
	// Retry tallies fault handling up to the failure.
	Retry RetryStats
}

func (e *RunError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// Run executes the plan. In data mode, inputs must hold a tensor for
// every input array; outputs are read back from disk afterwards.
func Run(p *codegen.Plan, be disk.Backend, inputs map[string]*tensor.Tensor, opt Options) (*Result, error) {
	return RunContext(context.Background(), p, be, inputs, opt)
}

// RunContext is Run under a context: cancellation or deadline expiry aborts
// the run at the next node boundary (pipelined runs drain in-flight disk
// operations first) and returns the context's error.
func RunContext(ctx context.Context, p *codegen.Plan, be disk.Backend, inputs map[string]*tensor.Tensor, opt Options) (*Result, error) {
	if (opt.StopAfter > 0 || opt.Resume != nil) && !Checkpointable(p) {
		return nil, fmt.Errorf("exec: plan holds buffer state across top-level iterations; not checkpointable")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e := &engine{
		plan:  p,
		be:    be,
		opt:   opt,
		ctx:   ctx,
		base:  map[string]int64{},
		bufs:  map[*codegen.Buffer]*bufInst{},
		arrs:  map[string]disk.Array{},
		hasIO: map[*codegen.Loop]bool{},
	}
	if opt.Metrics != nil {
		e.mBufBytes = opt.Metrics.Gauge("exec.buffer.bytes")
		e.mFaults = opt.Metrics.Counter("exec.io.faults")
		e.mRetries = opt.Metrics.Counter("exec.io.retries")
		e.vRetries = opt.Metrics.CounterVec("exec.io.retries.by_array", "array")
	}
	if opt.Pipeline {
		e.pipe = newPipeline(e, opt.PipelineDepth)
	}
	if opt.Resume != nil {
		// Completed units never regress below the resume point.
		e.lastCP = *opt.Resume
	}
	e.subtreeHasIO(p.Body)
	if err := e.stage(inputs); err != nil {
		return nil, e.failure(err)
	}
	if opt.SyncUnits {
		// Staged inputs are the baseline every restart re-opens; make them
		// durable before the first unit can complete against them.
		if err := disk.SyncBackend(be); err != nil {
			return nil, e.failure(fmt.Errorf("exec: sync after staging: %w", err))
		}
	}
	e.staged = true
	be.ResetStats()
	stopped, err := e.execTop(p.Body)
	if err != nil {
		return nil, e.failure(err)
	}
	if opt.Metrics != nil {
		opt.Metrics.Gauge("exec.buffer.peak_bytes").Set(float64(e.peakBytes))
	}
	res := &Result{Stats: be.Stats(), PeakBufferBytes: e.peakBytes, Stopped: stopped, Retry: e.retrySnapshot()}
	if e.pipe != nil {
		res.Pipeline = e.pipe.snapshot()
	}
	if stopped != nil {
		return res, nil
	}
	if !opt.DryRun && !opt.NoFetch {
		res.Outputs = map[string]*tensor.Tensor{}
		for _, da := range p.DiskArrays {
			if da.Kind != loops.Output {
				continue
			}
			t, err := e.fetch(da)
			if err != nil {
				return nil, e.failure(fmt.Errorf("exec: fetch output %q: %w", da.Name, err))
			}
			res.Outputs[da.Name] = t
		}
		res.Retry = e.retrySnapshot()
		if e.pipe != nil {
			// Fetch reads may have retried; re-fold them into the timeline.
			res.Pipeline = e.pipe.snapshot()
		}
	}
	return res, nil
}

type bufInst struct {
	t    *tensor.Tensor
	base []int64 // tile base per buffer dim at instantiation
}

type engine struct {
	plan *codegen.Plan
	be   disk.Backend
	opt  Options
	//lint:ignore ctxfield the engine struct is per-Run scratch state, never retained past the call
	ctx context.Context
	// pipe is non-nil in pipelined mode; top-level work units are then
	// executed by the asynchronous engine (pipeline.go) instead of exec.
	pipe *pipeline
	base map[string]int64 // current tile base per loop index
	// loopStack holds the enclosing loop indices, outermost first, for
	// error attribution (e.base alone has no deterministic order).
	loopStack []string
	bufs      map[*codegen.Buffer]*bufInst
	arrs      map[string]disk.Array
	// hasIO caches, per loop node, whether its subtree performs disk I/O;
	// dry runs skip I/O-free subtrees (their iteration counts are
	// unconstrained by the cost model and can be astronomical).
	hasIO map[*codegen.Loop]bool
	// dryLoops is the stack of I/O-free loops the pipelined step generator
	// is currently descending once instead of iterating (dry-run only);
	// their trip counts scale the modelled compute durations beneath.
	dryLoops []*codegen.Loop
	// curBytes/peakBytes track instantiated buffer memory.
	curBytes  int64
	peakBytes int64
	// sClock is the serial engine's modelled clock, advanced by every disk
	// and compute span it emits (pipelined runs use the pipeline's
	// two-clock timeline instead).
	sClock float64
	// mBufBytes mirrors curBytes into the metrics registry (nil without
	// Options.Metrics); its high-water mark is the peak watermark.
	mBufBytes *obs.Gauge
	// Retry/recovery bookkeeping. retryMu guards the tallies and the
	// jitter key: the pipelined engine retries on its issue goroutines.
	retryMu    sync.Mutex
	retryStats RetryStats
	retryKey   uint64
	// staged flips once input staging completes — the point after which
	// all plan arrays exist on the backend and a restart can Open them.
	staged bool
	// lastCP is the latest completed unit boundary (monotonic); cpTime
	// is the backend's modelled time when it was reached.
	lastCP Checkpoint
	cpTime float64
	// mFaults/mRetries mirror the retry tallies into the metrics
	// registry (nil without Options.Metrics).
	mFaults, mRetries *obs.Counter
	// vRetries breaks retries down per array (labeled family
	// exec.io.retries.by_array); nil without Options.Metrics.
	vRetries *obs.CounterVec
}

// retrySnapshot copies the retry tallies.
func (e *engine) retrySnapshot() RetryStats {
	e.retryMu.Lock()
	defer e.retryMu.Unlock()
	return e.retryStats
}

// noteUnit records a completed unit boundary, keeping lastCP monotonic
// (resumed runs re-execute top-level reads of earlier items, which must
// not roll the checkpoint back). Under Options.SyncUnits the backend is
// synced first: the checkpoint only advances once the unit's bytes are
// durable, so recovery never resumes past data that a crash could have
// lost.
func (e *engine) noteUnit(cp Checkpoint) error {
	if cp.Item < e.lastCP.Item || (cp.Item == e.lastCP.Item && cp.Iter <= e.lastCP.Iter) {
		return nil
	}
	if e.opt.SyncUnits {
		if err := disk.SyncBackend(e.be); err != nil {
			return fmt.Errorf("exec: sync at unit boundary {item %d, iter %d}: %w", cp.Item, cp.Iter, err)
		}
	}
	e.lastCP = cp
	e.cpTime = e.be.Stats().Time()
	if e.opt.OnUnit != nil {
		if err := e.opt.OnUnit(); err != nil {
			return fmt.Errorf("exec: unit hook at {item %d, iter %d}: %w", cp.Item, cp.Iter, err)
		}
	}
	return nil
}

// failure wraps a run error in a *RunError carrying restart state.
func (e *engine) failure(err error) error {
	re := &RunError{
		Err:    err,
		Staged: e.staged,
		Stats:  e.be.Stats(),
		Retry:  e.retrySnapshot(),
	}
	if Checkpointable(e.plan) {
		cp := e.lastCP
		re.Checkpoint = &cp
	}
	if w := re.Stats.Time() - e.cpTime; w > 0 {
		re.WastedSeconds = w
	}
	return re
}

// retryOp runs one section-I/O operation under the run's retry policy:
// transient typed faults are retried with capped exponential backoff.
// attemptDur is the modelled duration of one attempt; each retry charges
// attemptDur plus its backoff delay to the engine's timeline (the serial
// clock, or the pipeline's barrier-folded retry account) so the run
// still reconciles with the backend's Stats.Time(). Persistent faults
// and retry-budget exhaustion return the last error unchanged.
func (e *engine) retryOp(array string, attemptDur float64, fn func() error) error {
	pol := e.opt.Retry.ForArray(array)
	attempts := pol.Attempts()
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		var ioe *disk.IOError
		if errors.As(err, &ioe) {
			e.noteFault()
			if e.opt.Log.Enabled(obs.LevelWarn) {
				e.opt.Log.Warn("exec", "io.fault",
					obs.F("array", ioe.Array),
					obs.F("op", ioe.Op),
					obs.F("transient", ioe.Transient()),
					obs.F("error", err))
			}
		}
		if pol == nil || !disk.IsTransient(err) || attempt+1 >= attempts || e.ctx.Err() != nil {
			return err
		}
		delay := pol.Delay(attempt, e.nextRetryKey())
		e.noteRetry(delay + attemptDur)
		if e.vRetries != nil {
			e.vRetries.With(array).Inc()
		}
		if e.opt.Log.Enabled(obs.LevelWarn) {
			e.opt.Log.Warn("exec", "io.retry",
				obs.F("array", array),
				obs.F("attempt", attempt+1),
				obs.F("of", attempts),
				obs.F("delay_s", delay),
				obs.F("error", err))
		}
		if e.pipe != nil {
			e.pipe.addRetryExtra(delay + attemptDur)
		} else {
			e.sClock += delay + attemptDur
		}
		if pol.WallClock {
			//lint:ignore walltime opt-in wall-clock pacing: the modelled timeline already advanced above; Sleep runs only when the caller sets RetryPolicy.WallClock.
			if serr := pol.Sleep(e.ctx, delay); serr != nil {
				return err
			}
		}
	}
}

func (e *engine) noteFault() {
	e.retryMu.Lock()
	e.retryStats.FaultsSeen++
	e.retryMu.Unlock()
	if e.mFaults != nil {
		e.mFaults.Inc()
	}
}

func (e *engine) noteRetry(seconds float64) {
	e.retryMu.Lock()
	e.retryStats.Retries++
	e.retryStats.RetrySeconds += seconds
	e.retryMu.Unlock()
	if e.mRetries != nil {
		e.mRetries.Inc()
	}
}

func (e *engine) nextRetryKey() uint64 {
	e.retryMu.Lock()
	defer e.retryMu.Unlock()
	e.retryKey++
	return e.retryKey
}

// noteBufBytes publishes the current buffer memory level.
func (e *engine) noteBufBytes() {
	if e.mBufBytes != nil {
		e.mBufBytes.Set(float64(e.curBytes))
	}
}

// subtreeHasIO computes the dry-run pruning map.
func (e *engine) subtreeHasIO(ns []codegen.Node) bool {
	any := false
	for _, n := range ns {
		switch n := n.(type) {
		case *codegen.Loop:
			if e.subtreeHasIO(n.Body) {
				e.hasIO[n] = true
				any = true
			}
		case *codegen.IO, *codegen.InitPass:
			any = true
		}
	}
	return any
}

// stage creates all disk arrays and loads the inputs (or opens
// pre-existing inputs under Options.OpenInputs; on Resume, everything is
// opened since the interrupted run created it).
func (e *engine) stage(inputs map[string]*tensor.Tensor) error {
	for _, da := range e.plan.DiskArrays {
		if e.opt.Resume != nil {
			a, err := e.be.Open(da.Name)
			if err != nil {
				return fmt.Errorf("exec: resume: %w", err)
			}
			e.arrs[da.Name] = a
			continue
		}
		if da.Kind == loops.Input && e.opt.OpenInputs {
			a, err := e.be.Open(da.Name)
			if err != nil {
				return fmt.Errorf("exec: open input %q: %w", da.Name, err)
			}
			got := a.Dims()
			if len(got) != len(da.Dims) {
				return fmt.Errorf("exec: existing input %q has rank %d, plan needs %d", da.Name, len(got), len(da.Dims))
			}
			for i := range got {
				if got[i] != da.Dims[i] {
					return fmt.Errorf("exec: existing input %q dims %v do not match plan %v", da.Name, got, da.Dims)
				}
			}
			e.arrs[da.Name] = a
			continue
		}
		a, err := e.be.Create(da.Name, da.Dims)
		if err != nil {
			return fmt.Errorf("exec: create array %q: %w", da.Name, err)
		}
		e.arrs[da.Name] = a
		if da.Kind != loops.Input || e.opt.DryRun {
			continue
		}
		in, ok := inputs[da.Name]
		if !ok {
			return fmt.Errorf("exec: missing input array %q", da.Name)
		}
		if int64(in.Size()) != size(da.Dims) {
			return fmt.Errorf("exec: input %q has %d elements, want %d", da.Name, in.Size(), size(da.Dims))
		}
		lo := make([]int64, len(da.Dims))
		data := in.Data()
		err = e.retryOp(da.Name, 0, func() error {
			return a.WriteSection(lo, da.Dims, data)
		})
		if err != nil {
			return fmt.Errorf("exec: stage input %q: %w", da.Name, err)
		}
	}
	return nil
}

func size(dims []int64) int64 {
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	return n
}

// fetch reads a whole array back from disk (after stats capture).
func (e *engine) fetch(da codegen.DiskArray) (*tensor.Tensor, error) {
	dims := make([]int, len(da.Dims))
	for i, d := range da.Dims {
		dims[i] = int(d)
	}
	t := tensor.New(dims...)
	lo := make([]int64, len(da.Dims))
	err := e.retryOp(da.Name, 0, func() error {
		return e.arrs[da.Name].ReadSection(lo, da.Dims, t.Data())
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// execTop drives the plan's top-level items with checkpoint support:
// StopAfter counts top-level loop iterations; Resume skips completed
// items/iterations (re-executing top-level reads, which restore the
// buffers later nests consume).
func (e *engine) execTop(body []codegen.Node) (*Checkpoint, error) {
	var units int64
	resume := e.opt.Resume
	for i, n := range body {
		item := int64(i)
		if err := e.ctxErr(); err != nil {
			return nil, err
		}
		if l, ok := n.(*codegen.Loop); ok {
			if e.opt.DryRun && !e.hasIO[l] {
				continue
			}
			var it int64
			e.loopStack = append(e.loopStack, l.Index)
			for b := int64(0); b < l.Range; b += l.Tile {
				if resume != nil && (item < resume.Item || (item == resume.Item && it < resume.Iter)) {
					it++
					continue
				}
				e.base[l.Index] = b
				if err := e.execUnit(l.Body); err != nil {
					return nil, err
				}
				delete(e.base, l.Index)
				it++
				units++
				if err := e.noteUnit(Checkpoint{Item: item, Iter: it}); err != nil {
					return nil, err
				}
				if e.opt.StopAfter > 0 && units >= e.opt.StopAfter && b+l.Tile < l.Range {
					e.loopStack = e.loopStack[:len(e.loopStack)-1]
					return &Checkpoint{Item: item, Iter: it}, nil
				}
			}
			e.loopStack = e.loopStack[:len(e.loopStack)-1]
			if err := e.noteUnit(Checkpoint{Item: item + 1}); err != nil {
				return nil, err
			}
			continue
		}
		// Non-loop top-level item. On resume: re-execute reads (restores
		// read-only buffers); skip anything else already done.
		if resume != nil && item < resume.Item {
			if io, ok := n.(*codegen.IO); !ok || !io.Read {
				continue
			}
		}
		if err := e.execUnit([]codegen.Node{n}); err != nil {
			return nil, err
		}
		if err := e.noteUnit(Checkpoint{Item: item + 1}); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// execUnit executes one top-level work unit: a single iteration of a
// top-level loop, or a non-loop top-level item. In pipelined mode the unit
// runs through the asynchronous engine, which drains all in-flight disk
// operations before returning — the barrier that keeps unit boundaries
// (and thus StopAfter/Resume checkpoints) safe.
func (e *engine) execUnit(ns []codegen.Node) error {
	if e.pipe != nil {
		return e.pipe.runUnit(ns)
	}
	return e.exec(ns)
}

// ctxErr reports context cancellation as a run error.
func (e *engine) ctxErr() error {
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("exec: run cancelled: %w", err)
	}
	return nil
}

// pos describes the current loop position ("i=0,j=128") for error
// attribution.
func (e *engine) pos() string {
	if len(e.loopStack) == 0 {
		return "top level"
	}
	var b strings.Builder
	for i, idx := range e.loopStack {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", idx, e.base[idx])
	}
	return b.String()
}

func (e *engine) exec(ns []codegen.Node) error {
	for _, n := range ns {
		switch n := n.(type) {
		case *codegen.Loop:
			if e.opt.DryRun && !e.hasIO[n] {
				continue
			}
			e.loopStack = append(e.loopStack, n.Index)
			for b := int64(0); b < n.Range; b += n.Tile {
				if err := e.ctxErr(); err != nil {
					return err
				}
				e.base[n.Index] = b
				if err := e.exec(n.Body); err != nil {
					return err
				}
			}
			e.loopStack = e.loopStack[:len(e.loopStack)-1]
			delete(e.base, n.Index)
		case *codegen.IO:
			if err := e.doIO(n); err != nil {
				return ioErr(n.Read, n.Array, e.pos(), err)
			}
		case *codegen.ZeroBuf:
			if e.opt.DryRun {
				continue
			}
			e.instantiate(n.Buffer).t.Zero()
		case *codegen.InitPass:
			if e.opt.Tracer != nil {
				bytes, writes := e.initCost(n.Array)
				e.spanSerial(obs.TrackDisk, "init "+n.Array,
					e.plan.Cfg.Disk.WriteTime(bytes, writes),
					map[string]any{"bytes": bytes, "writes": writes})
			}
			if err := e.initPass(n.Array); err != nil {
				return fmt.Errorf("exec: init pass over %q: %w", n.Array, err)
			}
		case *codegen.Compute:
			if e.opt.DryRun {
				continue
			}
			if e.opt.Tracer != nil {
				e.spanSerial(obs.TrackCompute, "compute "+n.Out.Name, e.computeSeconds(n, e.base, 1), nil)
			}
			if err := e.compute(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// ioErr attributes a disk error to the array and plan position.
func ioErr(read bool, array, pos string, err error) error {
	verb := "write to"
	if read {
		verb = "read of"
	}
	return fmt.Errorf("exec: %s %q at %s: %w", verb, array, pos, err)
}

// section computes the disk section a buffer maps to at the current tile
// bases: tile dims clip at the array boundary, full dims span the range.
func (e *engine) section(buf *codegen.Buffer) (lo, shape []int64) {
	lo = make([]int64, len(buf.Dims))
	shape = make([]int64, len(buf.Dims))
	for i, d := range buf.Dims {
		n := e.plan.Prog.Ranges[d.Index]
		switch d.Class {
		case placement.ExtTile:
			b := e.base[d.Index]
			t := e.plan.Tiles[d.Index]
			lo[i] = b
			shape[i] = min(t, n-b)
		case placement.ExtFull:
			lo[i] = 0
			shape[i] = n
		default:
			lo[i] = e.base[d.Index] // ExtOne: single current element
			shape[i] = 1
		}
	}
	return lo, shape
}

// instantiate (re)binds a buffer tensor to the current tile bases.
func (e *engine) instantiate(buf *codegen.Buffer) *bufInst {
	lo, shape := e.section(buf)
	dims := make([]int, len(shape))
	n := 1
	for i, s := range shape {
		dims[i] = int(s)
		n *= int(s)
	}
	inst := e.bufs[buf]
	if inst == nil {
		inst = &bufInst{}
		e.bufs[buf] = inst
	}
	if inst.t == nil || inst.t.Size() != n {
		e.curBytes += int64(n-sizeOf(inst.t)) * 8
		if e.curBytes > e.peakBytes {
			e.peakBytes = e.curBytes
		}
		e.noteBufBytes()
		inst.t = tensor.New(dimsOrScalar(dims)...)
	} else {
		inst.t = inst.t.Reshape(dimsOrScalar(dims)...)
	}
	inst.base = lo
	return inst
}

func sizeOf(t *tensor.Tensor) int {
	if t == nil {
		return 0
	}
	return t.Size()
}

func dimsOrScalar(dims []int) []int {
	if len(dims) == 0 {
		return nil
	}
	return dims
}

func (e *engine) doIO(n *codegen.IO) error {
	arr := e.arrs[n.Array]
	lo, shape := e.section(n.Buffer)
	if e.opt.DryRun {
		e.spanIO(n.Read, n.Array, shape)
		return e.retryOp(n.Array, e.ioDur(n.Read, shape), func() error {
			if n.Read {
				return arr.ReadSection(lo, shape, nil)
			}
			return arr.WriteSection(lo, shape, nil)
		})
	}
	if n.Read {
		inst := e.instantiate(n.Buffer)
		e.spanIO(true, n.Array, shape)
		return e.retryOp(n.Array, e.ioDur(true, shape), func() error {
			return arr.ReadSection(lo, shape, inst.t.Data())
		})
	}
	inst := e.bufs[n.Buffer]
	if inst == nil {
		return fmt.Errorf("write of uninstantiated buffer %q", n.Buffer.Name)
	}
	wshape := dimsToInt64(inst.t.Dims())
	e.spanIO(false, n.Array, wshape)
	return e.retryOp(n.Array, e.ioDur(false, wshape), func() error {
		return arr.WriteSection(inst.base, wshape, inst.t.Data())
	})
}

// ioDur is the modelled duration of one section operation of the given
// shape — the same figure the backend charges to Stats.
func (e *engine) ioDur(read bool, shape []int64) float64 {
	bytes := size(shape) * 8
	if read {
		return e.plan.Cfg.Disk.ReadTime(bytes, 1)
	}
	return e.plan.Cfg.Disk.WriteTime(bytes, 1)
}

// spanIO emits a serial-clock disk span matching the backend's charge for
// one section operation (the shape is the one actually passed to the
// backend, so span durations sum to the backend's modelled time). Under
// retries, the span covers the first attempt; retried attempts advance
// the clock without spans of their own (retryOp), appearing as gaps.
func (e *engine) spanIO(read bool, array string, shape []int64) {
	if e.opt.Tracer == nil {
		return
	}
	bytes := size(shape) * 8
	name := "W " + array
	if read {
		name = "R " + array
	}
	e.spanSerial(obs.TrackDisk, name, e.ioDur(read, shape), map[string]any{"bytes": bytes})
}

// spanSerial records one span on the serial engine's single clock.
func (e *engine) spanSerial(track, name string, dur float64, args map[string]any) {
	e.opt.Tracer.Span(obs.Span{Track: track, Name: name, Start: e.sClock, Dur: dur, Args: args})
	e.sClock += dur
}

// computeSeconds models a compute block's duration at the given bases
// under the machine's flop rate (0 without one). mul folds in the trip
// counts of pruned dry-run loops (pass 1 when not applicable).
func (e *engine) computeSeconds(c *codegen.Compute, base map[string]int64, mul float64) float64 {
	rate := e.plan.Cfg.FlopRate
	if rate <= 0 {
		return 0
	}
	flops := float64(e.computePoints(c, base)) * float64(2*len(c.Factors))
	if mul > 0 {
		flops *= mul
	}
	return flops / rate
}

// initCost returns the modelled bytes and operation count of an init pass
// (the tile-by-tile zero-fill initPass performs).
func (e *engine) initCost(name string) (bytes, writes int64) {
	for _, da := range e.plan.DiskArrays {
		if da.Name != name {
			continue
		}
		bytes = size(da.Dims) * 8
		writes = 1
		for i, idx := range da.Indices {
			t := e.plan.Tiles[idx]
			writes *= (da.Dims[i] + t - 1) / t
		}
		return bytes, writes
	}
	return 0, 0
}

func dimsToInt64(dims []int) []int64 {
	out := make([]int64, len(dims))
	for i, d := range dims {
		out[i] = int64(d)
	}
	return out
}

// initPass zero-fills a disk array tile by tile, charging the writes.
func (e *engine) initPass(name string) error {
	var da *codegen.DiskArray
	for i := range e.plan.DiskArrays {
		if e.plan.DiskArrays[i].Name == name {
			da = &e.plan.DiskArrays[i]
		}
	}
	if da == nil {
		return fmt.Errorf("exec: init pass for unknown disk array %q", name)
	}
	arr := e.arrs[name]
	tiles := make([]int64, len(da.Dims))
	for i, idx := range da.Indices {
		tiles[i] = e.plan.Tiles[idx]
	}
	lo := make([]int64, len(da.Dims))
	shape := make([]int64, len(da.Dims))
	var zero []float64
	var walk func(d int) error
	walk = func(d int) error {
		if d == len(da.Dims) {
			n := size(shape)
			var buf []float64
			if !e.opt.DryRun {
				if int64(len(zero)) < n {
					zero = make([]float64, n)
				}
				buf = zero[:n]
			}
			// lo/shape are mutated by the walk, but a retry fires
			// before the walk advances, so the closure sees the
			// tile it failed on.
			if err := e.retryOp(name, e.ioDur(false, shape), func() error {
				return arr.WriteSection(lo, shape, buf)
			}); err != nil {
				return fmt.Errorf("tile at lo=%v: %w", lo, err)
			}
			return nil
		}
		for b := int64(0); b < da.Dims[d]; b += tiles[d] {
			lo[d] = b
			shape[d] = min(tiles[d], da.Dims[d]-b)
			if err := walk(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0)
}

// compute runs a statement's intra-tile block: for every point of the
// intra-tile index space, out += Π factors.
func (e *engine) compute(c *codegen.Compute) error {
	outInst := e.bufs[c.Out]
	if outInst == nil {
		return fmt.Errorf("exec: compute into uninstantiated buffer %q at %s", c.Out.Name, e.pos())
	}
	facInsts := make([]*bufInst, len(c.Factors))
	for i, f := range c.Factors {
		inst := e.bufs[f]
		if inst == nil {
			return fmt.Errorf("exec: compute reads uninstantiated buffer %q at %s", f.Name, e.pos())
		}
		facInsts[i] = inst
	}
	e.computeWith(c, e.base, outInst, facInsts)
	return nil
}

// computeWith executes the intra-tile block against explicit buffer
// instances at the given tile bases — the shared kernel of the serial and
// pipelined engines (the latter passes snapshots taken at scheduling time).
func (e *engine) computeWith(c *codegen.Compute, base map[string]int64, outInst *bufInst, facInsts []*bufInst) {
	// Intra-tile extents at the tile bases.
	extents := make([]int64, len(c.Intra))
	bases := make([]int64, len(c.Intra))
	intraPos := map[string]int{}
	for i, x := range c.Intra {
		n := e.plan.Prog.Ranges[x]
		b := base[x]
		bases[i] = b
		extents[i] = min(e.plan.Tiles[x], n-b)
		intraPos[x] = i
	}

	// Parallel split: an intra dimension that indexes the output buffer,
	// so workers touch disjoint output elements.
	workers := e.opt.Workers
	splitDim := -1
	if workers > 1 {
		for _, d := range c.Out.Dims {
			if j, ok := intraPos[d.Index]; ok && extents[j] >= 2 {
				if splitDim < 0 || extents[j] > extents[splitDim] {
					splitDim = j
				}
			}
		}
	}
	if splitDim < 0 || workers <= 1 {
		e.computeRange(c, base, outInst, facInsts, intraPos, bases, extents, 0, 0, extents0(extents))
		return
	}
	if int64(workers) > extents[splitDim] {
		workers = int(extents[splitDim])
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := extents[splitDim] * int64(w) / int64(workers)
		hi := extents[splitDim] * int64(w+1) / int64(workers)
		if hi == lo {
			continue
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			e.computeRange(c, base, outInst, facInsts, intraPos, bases, extents, splitDim, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// computePoints returns the number of intra-tile index points of a compute
// block at the given tile bases (used by the pipelined timeline model).
func (e *engine) computePoints(c *codegen.Compute, base map[string]int64) int64 {
	pts := int64(1)
	for _, x := range c.Intra {
		n := e.plan.Prog.Ranges[x]
		pts *= min(e.plan.Tiles[x], n-base[x])
	}
	return pts
}

// extents0 returns the full range of dimension 0 (or 1 for scalar
// spaces), the default split bounds of a serial run.
func extents0(extents []int64) int64 {
	if len(extents) == 0 {
		return 1
	}
	return extents[0]
}

// computeRange executes the intra-tile block with dimension splitDim
// restricted to [lo, hi).
func (e *engine) computeRange(c *codegen.Compute, base map[string]int64, outInst *bufInst, facInsts []*bufInst,
	intraPos map[string]int, bases, extents []int64, splitDim int, lo, hi int64) {

	idx := make([]int64, len(c.Intra))
	if len(idx) > 0 {
		idx[splitDim] = lo
	}

	// Precompile each reference's addressing against the intra index
	// vector so the hot loop is free of map lookups.
	refs := make([]compiledRef, 0, len(c.Factors)+1)
	compileRef := func(buf *codegen.Buffer, inst *bufInst) compiledRef {
		cr := compiledRef{data: inst.t.Data()}
		for i, d := range buf.Dims {
			dim := inst.t.Dim(i)
			j, isIntra := intraPos[d.Index]
			var src *int64
			var con int64
			if isIntra {
				src = &idx[j]
				con = bases[j] - inst.base[i]
			} else {
				con = base[d.Index] - inst.base[i]
			}
			cr.dims = append(cr.dims, refDim{size: dim, src: src, con: con})
		}
		return cr
	}
	out := compileRef(c.Out, outInst)
	for i, f := range c.Factors {
		refs = append(refs, compileRef(f, facInsts[i]))
	}

	for {
		prod := 1.0
		for i := range refs {
			prod *= refs[i].data[refs[i].offset()]
		}
		out.data[out.offset()] += prod

		d := len(idx) - 1
		for ; d >= 0; d-- {
			idx[d]++
			limit := extents[d]
			reset := int64(0)
			if d == splitDim {
				limit, reset = hi, lo
			}
			if idx[d] < limit {
				break
			}
			idx[d] = reset
		}
		if d < 0 {
			break
		}
	}
}

// compiledRef is a buffer reference with addressing resolved to pointers
// into the intra index vector plus constant offsets.
type compiledRef struct {
	data []float64
	dims []refDim
}

type refDim struct {
	size int
	src  *int64 // intra index source, nil for loop-invariant dims
	con  int64  // constant offset (global base minus buffer base)
}

func (r *compiledRef) offset() int {
	off := int64(0)
	for i := range r.dims {
		v := r.dims[i].con
		if r.dims[i].src != nil {
			v += *r.dims[i].src
		}
		off = off*int64(r.dims[i].size) + v
	}
	return int(off)
}

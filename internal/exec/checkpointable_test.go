package exec

import (
	"testing"

	"repro/internal/codegen"
)

// TestCheckpointable pins the syntactic contract: the top level may hold
// only loops, init passes, and reads. Anything that represents in-memory
// state produced at the top level and consumed later — a write of a
// buffer, a buffer zero-fill — breaks the unit model.
func TestCheckpointable(t *testing.T) {
	buf := &codegen.Buffer{Name: "T.b"}
	cases := []struct {
		name string
		body []codegen.Node
		want bool
	}{
		{"empty", nil, true},
		{"loops only", []codegen.Node{
			&codegen.Loop{Index: "a", Range: 4, Tile: 2},
		}, true},
		{"init pass", []codegen.Node{
			&codegen.InitPass{Array: "C"},
			&codegen.Loop{Index: "a", Range: 4, Tile: 2},
		}, true},
		{"top-level read", []codegen.Node{
			&codegen.IO{Array: "A", Buffer: buf, Read: true},
			&codegen.Loop{Index: "a", Range: 4, Tile: 2},
		}, true},
		{"top-level write", []codegen.Node{
			&codegen.Loop{Index: "a", Range: 4, Tile: 2},
			&codegen.IO{Array: "C", Buffer: buf, Read: false},
		}, false},
		{"top-level zero-fill", []codegen.Node{
			&codegen.ZeroBuf{Buffer: buf},
			&codegen.Loop{Index: "a", Range: 4, Tile: 2},
		}, false},
		{"nested write is fine", []codegen.Node{
			&codegen.Loop{Index: "a", Range: 4, Tile: 2, Body: []codegen.Node{
				&codegen.IO{Array: "C", Buffer: buf, Read: false},
			}},
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &codegen.Plan{Body: tc.body}
			if got := Checkpointable(p); got != tc.want {
				t.Fatalf("Checkpointable = %v, want %v", got, tc.want)
			}
		})
	}
}

package exec

// This file adds checkpoint-based crash recovery on top of the engine's
// retry layer (exec.go). Retries absorb transient faults inside a run;
// RunResilient handles what escapes them — persistent faults, exhausted
// retry budgets — by rolling back to the last completed checkpoint
// boundary and re-entering the engine through the existing Resume path,
// under a bounded restart budget. The division of labour mirrors the
// failure taxonomy: transient → retry, persistent → restart, budget
// exhausted → typed, attributed error to the caller.

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// RecoveryOptions bound RunResilient's restart behaviour.
type RecoveryOptions struct {
	// MaxRestarts is the restart budget; values < 1 mean the default
	// of 3. When it is exhausted the last run's error is returned.
	MaxRestarts int
	// Reopen, if non-nil, is called before each restart to rebuild the
	// backend (e.g. a fresh disk.FileStore over the same directory
	// after a crashed process). The previous backend is abandoned, not
	// closed — after a fault its state is suspect, and closing a
	// simulator would destroy the arrays a resume needs. When nil,
	// RunResilient probes the backend itself for disk.Reopener (which
	// FileStore and fault.Injector implement) and otherwise reuses the
	// same backend.
	Reopen func() (disk.Backend, error)
}

// DefaultMaxRestarts is the restart budget when RecoveryOptions leaves
// MaxRestarts unset.
const DefaultMaxRestarts = 3

// RecoveryReport is the structured account of a resilient run: what
// faults were seen, how much work retries and restarts absorbed, and
// what it cost in modelled time.
type RecoveryReport struct {
	// FaultsSeen counts typed I/O errors observed across all attempts.
	FaultsSeen int64 `json:"faults_seen"`
	// Retries counts section-level retry attempts across all runs.
	Retries int64 `json:"retries"`
	// RetrySeconds is the modelled time spent on backoff delays and
	// repeated attempts.
	RetrySeconds float64 `json:"retry_seconds"`
	// Restarts counts checkpoint rollbacks (0 for a clean run).
	Restarts int64 `json:"restarts"`
	// ResumePoints lists the checkpoint each restart resumed from.
	ResumePoints []Checkpoint `json:"resume_points,omitempty"`
	// WastedSeconds is the modelled I/O time of work executed past a
	// checkpoint and then repeated after a rollback.
	WastedSeconds float64 `json:"wasted_seconds"`
	// TotalStats accumulates the backend's modelled I/O statistics
	// across every attempt, failed ones included.
	TotalStats disk.Stats `json:"total_stats"`
	// IntegrityDetected counts restarts triggered by a verified-read
	// checksum failure (disk.IntegrityError) rather than an ordinary I/O
	// fault; IntegrityHealed counts those the heal path resolved (restage
	// or recompute) before resuming.
	IntegrityDetected int64 `json:"integrity_detected,omitempty"`
	IntegrityHealed   int64 `json:"integrity_healed,omitempty"`
	// Heals lists what the heal path did for each integrity fault.
	Heals []HealAction `json:"heals,omitempty"`
}

// HealAction records how one integrity fault was resolved: the rotten
// array, the method ("restage" re-wrote an input from its source tensor;
// "recompute" rolled the resume point back to the array's producer unit),
// and the checkpoint the run resumed from afterwards.
type HealAction struct {
	Array  string     `json:"array"`
	Method string     `json:"method"`
	Resume Checkpoint `json:"resume"`
}

func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults %d, retries %d (%.3f s), restarts %d, wasted %.3f s",
		r.FaultsSeen, r.Retries, r.RetrySeconds, r.Restarts, r.WastedSeconds)
	if r.IntegrityDetected > 0 {
		fmt.Fprintf(&b, ", integrity faults %d (healed %d)", r.IntegrityDetected, r.IntegrityHealed)
	}
	if len(r.ResumePoints) > 0 {
		b.WriteString(", resumed at")
		for _, cp := range r.ResumePoints {
			fmt.Fprintf(&b, " {item %d, iter %d}", cp.Item, cp.Iter)
		}
	}
	return b.String()
}

// accumulate folds one attempt's tallies into the report.
func (r *RecoveryReport) accumulate(st disk.Stats, rt RetryStats, wasted float64) {
	r.FaultsSeen += rt.FaultsSeen
	r.Retries += rt.Retries
	r.RetrySeconds += rt.RetrySeconds
	r.WastedSeconds += wasted
	r.TotalStats.Add(st)
}

// RecoverySafe reports whether a restart may resume from a mid-plan
// checkpoint: the plan must be Checkpointable, and no top-level item may
// both read and write the same disk array (an init pass counts as a
// write). A partially executed unit of such a plan is harmless — its
// re-execution reads only arrays the unit does not write, so it cannot
// observe its own partial output. Read-modify-write accumulation fails
// the test; those plans restart from the beginning (Checkpoint{0, 0}),
// where the init passes re-zero the accumulators.
func RecoverySafe(p *codegen.Plan) bool {
	if !Checkpointable(p) {
		return false
	}
	for _, n := range p.Body {
		reads, writes := map[string]bool{}, map[string]bool{}
		collectIO(n, reads, writes)
		for a := range writes {
			if reads[a] {
				return false
			}
		}
	}
	return true
}

// ProducerUnit returns the index of the first top-level plan item whose
// subtree writes the named disk array (an init pass counts as a write) —
// the unit integrity recovery rolls back to when a disk intermediate is
// found rotten. The static verifier's rule S5 checks the same property
// ahead of time: every non-input array read at the top level must have
// such a producer at or before its first reader.
func ProducerUnit(p *codegen.Plan, array string) (int64, bool) {
	for i, n := range p.Body {
		reads, writes := map[string]bool{}, map[string]bool{}
		collectIO(n, reads, writes)
		if writes[array] {
			return int64(i), true
		}
	}
	return 0, false
}

// collectIO gathers the disk arrays a subtree reads and writes.
func collectIO(n codegen.Node, reads, writes map[string]bool) {
	switch n := n.(type) {
	case *codegen.Loop:
		for _, c := range n.Body {
			collectIO(c, reads, writes)
		}
	case *codegen.IO:
		if n.Read {
			reads[n.Array] = true
		} else {
			writes[n.Array] = true
		}
	case *codegen.InitPass:
		writes[n.Array] = true
	}
}

// RunResilient executes the plan with checkpoint-based crash recovery:
// when a run fails on a typed I/O fault after staging completed, it
// rolls back to the last completed checkpoint boundary (or the start,
// for plans that are not RecoverySafe), optionally re-opens the backend,
// and resumes via Options.Resume — up to rc.MaxRestarts times. The
// returned report accounts for every attempt; on success it is also
// attached to Result.Recovery.
//
// Requirements: the plan must be Checkpointable for mid-plan restarts
// (otherwise only the retry layer applies and any persistent fault is
// fatal), and opt.Resume/opt.StopAfter must be unset — RunResilient owns
// the checkpoint machinery.
func RunResilient(ctx context.Context, p *codegen.Plan, be disk.Backend, inputs map[string]*tensor.Tensor, opt Options, rc RecoveryOptions) (*Result, *RecoveryReport, error) {
	if opt.Resume != nil || opt.StopAfter > 0 {
		return nil, nil, fmt.Errorf("exec: RunResilient owns Resume/StopAfter; leave them unset")
	}
	maxRestarts := rc.MaxRestarts
	if maxRestarts < 1 {
		maxRestarts = DefaultMaxRestarts
	}
	rep := &RecoveryReport{}
	// Recovery implies the durability discipline: a checkpoint may only
	// advance once its unit's bytes are durable, or a resume could skip
	// work whose output a crash threw away.
	base := opt
	base.SyncUnits = true
	runOpt := base
	for {
		res, err := RunContext(ctx, p, be, inputs, runOpt)
		if err == nil {
			rep.accumulate(res.Stats, res.Retry, 0)
			res.Recovery = rep
			if rep.Restarts > 0 || rep.FaultsSeen > 0 {
				opt.Log.Info("exec", "recovery.done",
					obs.F("restarts", rep.Restarts),
					obs.F("faults", rep.FaultsSeen),
					obs.F("retries", rep.Retries),
					obs.F("integrity_healed", rep.IntegrityHealed),
					obs.F("wasted_s", rep.WastedSeconds))
			}
			return res, rep, nil
		}
		var re *RunError
		if errors.As(err, &re) {
			rep.accumulate(re.Stats, re.Retry, re.WastedSeconds)
		}
		var ioe *disk.IOError
		restartable := errors.As(err, &ioe) &&
			re != nil && re.Staged && re.Checkpoint != nil
		if !restartable || rep.Restarts >= int64(maxRestarts) || ctx != nil && ctx.Err() != nil {
			opt.Log.Error("exec", "recovery.failed",
				obs.F("restarts", rep.Restarts),
				obs.F("restartable", restartable),
				obs.F("error", err))
			return nil, rep, err
		}
		cp := *re.Checkpoint
		if !RecoverySafe(p) {
			// A partially executed unit may have fed its own partial
			// writes back through a read-modify-write; replay from the
			// start, where init passes re-zero the accumulators.
			cp = Checkpoint{}
		}
		// An integrity fault needs more than a rollback: re-reading a
		// rotten block returns the same bytes, so the data itself must be
		// healed before the resumed run can get past it.
		var ie *disk.IntegrityError
		if errors.As(err, &ie) {
			rep.IntegrityDetected++
			if opt.Metrics != nil {
				opt.Metrics.Counter("exec.integrity.detected").Add(1)
			}
			opt.Log.Warn("exec", "integrity.detected",
				obs.F("array", ie.Array),
				obs.F("error", err))
			heal, herr := healIntegrity(p, be, inputs, ie, &cp, opt.DryRun)
			if herr != nil {
				opt.Log.Error("exec", "integrity.unhealable",
					obs.F("array", ie.Array),
					obs.F("error", herr))
				return nil, rep, fmt.Errorf("exec: integrity fault on array %q cannot be healed (%v): %w", ie.Array, herr, err)
			}
			rep.IntegrityHealed++
			rep.Heals = append(rep.Heals, heal)
			if opt.Metrics != nil {
				opt.Metrics.Counter("exec.integrity.healed").Add(1)
			}
			opt.Log.Info("exec", "integrity.healed",
				obs.F("array", heal.Array),
				obs.F("method", heal.Method),
				obs.F("resume_item", heal.Resume.Item),
				obs.F("resume_iter", heal.Resume.Iter))
		}
		if rc.Reopen != nil {
			nbe, rerr := rc.Reopen()
			if rerr != nil {
				return nil, rep, fmt.Errorf("exec: recovery reopen: %w", rerr)
			}
			be = nbe
		} else if ro, ok := be.(disk.Reopener); ok {
			// Persistent faults can leave file handles or wrapper state
			// suspect; rebuild the backend over its surviving files.
			nbe, rerr := ro.Reopen()
			if rerr != nil {
				return nil, rep, fmt.Errorf("exec: recovery reopen: %w", rerr)
			}
			be = nbe
		}
		rep.Restarts++
		rep.ResumePoints = append(rep.ResumePoints, cp)
		opt.Log.Warn("exec", "recovery.restart",
			obs.F("restart", rep.Restarts),
			obs.F("resume_item", cp.Item),
			obs.F("resume_iter", cp.Iter),
			obs.F("error", err))
		runOpt = base
		runOpt.Resume = &cp
		// The resume path opens every array the interrupted attempt
		// created; staging (and OpenInputs) no longer applies.
		runOpt.OpenInputs = false
	}
}

// healIntegrity resolves one verified-read failure so the resumed run can
// make progress. The order is bless-then-regenerate: the rotten array's
// checksum index is first rebuilt to accept its current contents (every
// write verifies the blocks it touches before mutating them, so without
// the blessing the heal's own writes — and the resumed run's — would trip
// on the same rot forever), then the data is regenerated over the blessed
// bytes: an input is re-staged whole from its source tensor; a disk
// intermediate is recomputed by rolling the resume point back to its
// producer unit, whose re-execution rewrites every block the plan reads
// (the verifier's dataflow rules guarantee reads are write-covered).
// Finally the backend is synced so a reopen does not resurrect the stale
// pre-heal index. On success cp holds the (possibly rolled back) resume
// point.
func healIntegrity(p *codegen.Plan, be disk.Backend, inputs map[string]*tensor.Tensor, ie *disk.IntegrityError, cp *Checkpoint, dryRun bool) (HealAction, error) {
	// Repair-before-recompute: a replicated backend (ring.Store) first
	// tries to restore the rotten copies from a healthy replica — the
	// data already exists, no rollback or re-staging needed. Only when
	// some block has no healthy replica left does the single-backend
	// bless-then-regenerate path below take over.
	if h := disk.AsReplicaHealer(be); h != nil {
		if _, unhealed, err := h.HealArray(ie.Array); err == nil && unhealed == 0 {
			if err := disk.SyncBackend(be); err != nil {
				return HealAction{}, fmt.Errorf("sync healed replicas: %w", err)
			}
			return HealAction{Array: ie.Array, Method: "replica-copy", Resume: *cp}, nil
		}
		// Heal error or unhealed blocks: whatever copies did converge
		// stay converged; the rest needs the regeneration path below.
	}
	st := disk.AsIntegrityStore(be)
	if st == nil {
		return HealAction{}, fmt.Errorf("backend keeps no integrity metadata")
	}
	if err := st.RebuildChecksums(ie.Array); err != nil {
		return HealAction{}, fmt.Errorf("rebuild checksums: %w", err)
	}
	var da *codegen.DiskArray
	for i := range p.DiskArrays {
		if p.DiskArrays[i].Name == ie.Array {
			da = &p.DiskArrays[i]
			break
		}
	}
	if da == nil {
		return HealAction{}, fmt.Errorf("not a plan array")
	}
	act := HealAction{Array: ie.Array}
	if da.Kind == loops.Input {
		// The pristine source data is in hand; re-stage the whole array.
		// Dry runs stage no input data, so the blessed (cost-only) index
		// is already the heal.
		in, ok := inputs[ie.Array]
		if !ok || in == nil {
			if !dryRun {
				return HealAction{}, fmt.Errorf("input has no source tensor to re-stage from")
			}
		} else if !dryRun {
			a, err := be.Open(ie.Array)
			if err != nil {
				return HealAction{}, fmt.Errorf("re-stage: %w", err)
			}
			lo := make([]int64, len(da.Dims))
			if err := a.WriteSection(lo, da.Dims, in.Data()); err != nil {
				return HealAction{}, fmt.Errorf("re-stage: %w", err)
			}
		}
		act.Method = "restage"
	} else {
		prod, ok := ProducerUnit(p, ie.Array)
		if !ok {
			return HealAction{}, fmt.Errorf("no producer unit writes it")
		}
		if prod < cp.Item || (prod == cp.Item && cp.Iter > 0) {
			*cp = Checkpoint{Item: prod}
		}
		act.Method = "recompute"
	}
	if err := disk.SyncBackend(be); err != nil {
		return HealAction{}, fmt.Errorf("sync healed index: %w", err)
	}
	act.Resume = *cp
	return act, nil
}

package exec

// This file is the asynchronous double-buffered execution engine. The
// serial interpreter (exec.go) performs every disk operation inline; here
// each top-level work unit is first flattened into a program-order step
// list, then re-executed with reads prefetched and writes retired in the
// background while compute blocks run on the caller's goroutine. Three
// mechanisms keep results bit-identical to serial execution:
//
//   - double-buffered slots: every plan buffer owns up to two instances,
//     so the next tile's read fills the shadow slot while compute and
//     write-behind still use the current one. The shadow slot is only
//     allocated while total buffer memory stays within the machine's
//     limit; under memory pressure the engine falls back to reusing the
//     slot in place, which serializes exactly like the serial engine.
//   - hazard tracking: an operation waits for every earlier operation it
//     conflicts with — through a buffer slot (fill/use) or through
//     overlapping disk sections of the same array (RAW/WAR/WAW).
//   - unit barriers: all in-flight operations drain at every top-level
//     work-unit boundary, so StopAfter/Resume checkpoints and backend
//     Close see quiescent disks.
//
// Alongside real execution the scheduler maintains a deterministic
// two-clock timeline (one I/O channel, one compute engine) under the
// machine's cost model: an operation starts at max(its channel's clock,
// its dependencies' finish times). The resulting OverlappedSeconds is the
// modelled critical path of the pipelined code, against SerialSeconds,
// the plain sum every operation would cost back to back — the Table 3
// style serial-vs-overlapped comparison.

import (
	"fmt"
	"sync"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// defaultPipelineDepth bounds in-flight asynchronous disk operations when
// Options.PipelineDepth is zero: enough for a prefetch and a couple of
// write-behinds without flooding the backend.
const defaultPipelineDepth = 4

// PipelineStats reports the pipelined engine's modelled timeline and
// overlap counters.
type PipelineStats struct {
	// SerialSeconds is the modelled time with every disk operation and
	// compute block executed back to back (the serial engine's critical
	// path under the same cost model).
	SerialSeconds float64
	// OverlappedSeconds is the modelled critical path with prefetch and
	// write-behind overlapping compute: never above SerialSeconds, and at
	// best max(IOSeconds, ComputeSeconds) plus barrier stalls.
	OverlappedSeconds float64
	// IOSeconds and ComputeSeconds split SerialSeconds by engine.
	IOSeconds      float64
	ComputeSeconds float64
	// PrefetchedReads counts reads issued into a shadow slot while the
	// previous instance of the buffer was still live.
	PrefetchedReads int64
	// WriteBehindWrites counts writes retired asynchronously.
	WriteBehindWrites int64
	// Barriers counts top-level work-unit boundaries (each drains all
	// in-flight operations).
	Barriers int64
}

// Speedup returns SerialSeconds / OverlappedSeconds (1 when undefined).
func (s PipelineStats) Speedup() float64 {
	if s.OverlappedSeconds <= 0 {
		return 1
	}
	return s.SerialSeconds / s.OverlappedSeconds
}

func (s PipelineStats) String() string {
	return fmt.Sprintf("serial %.3f s, overlapped %.3f s (%.2fx; I/O %.3f s, compute %.3f s; %d prefetches, %d write-behinds)",
		s.SerialSeconds, s.OverlappedSeconds, s.Speedup(), s.IOSeconds, s.ComputeSeconds, s.PrefetchedReads, s.WriteBehindWrites)
}

// stepKind discriminates pstep.
type stepKind uint8

const (
	stepRead stepKind = iota
	stepWrite
	stepZero
	stepInit
	stepCompute
)

// pstep is one operation of a work unit, flattened into program order with
// loop bases resolved.
type pstep struct {
	kind stepKind
	// buf, array, lo, shape describe I/O and zero steps (section resolved
	// at generation time).
	buf       *codegen.Buffer
	array     string
	lo, shape []int64
	// comp and base describe compute steps (base is a snapshot of the loop
	// bases, owned by the step).
	comp *codegen.Compute
	base map[string]int64
	// mul scales the modelled compute duration in dry-run mode: an
	// I/O-free enclosing loop is descended once with the remaining trip
	// count folded in here (0 means 1).
	mul float64
	// pos is the loop position for error attribution.
	pos string
}

// genSteps flattens a unit's node list into program-order steps, applying
// the same dry-run pruning as the serial interpreter. Compute steps are
// generated even in dry-run mode: their execution is skipped but their
// modelled duration feeds the timeline.
func (e *engine) genSteps(ns []codegen.Node, steps []pstep) []pstep {
	for _, n := range ns {
		switch n := n.(type) {
		case *codegen.Loop:
			if e.opt.DryRun && !e.hasIO[n] {
				// No disk traffic inside (the subtree holds only compute:
				// InitPass counts as I/O): descend a single iteration and
				// fold the remaining trips into the compute multiplier, so
				// the modelled compute time covers the whole subtree without
				// enumerating its (cost-model-unconstrained) iteration space.
				e.loopStack = append(e.loopStack, n.Index)
				e.base[n.Index] = 0
				e.dryLoops = append(e.dryLoops, n)
				steps = e.genSteps(n.Body, steps)
				e.dryLoops = e.dryLoops[:len(e.dryLoops)-1]
				e.loopStack = e.loopStack[:len(e.loopStack)-1]
				delete(e.base, n.Index)
				continue
			}
			e.loopStack = append(e.loopStack, n.Index)
			for b := int64(0); b < n.Range; b += n.Tile {
				e.base[n.Index] = b
				steps = e.genSteps(n.Body, steps)
			}
			e.loopStack = e.loopStack[:len(e.loopStack)-1]
			delete(e.base, n.Index)
		case *codegen.IO:
			k := stepWrite
			if n.Read {
				k = stepRead
			}
			lo, shape := e.section(n.Buffer)
			steps = append(steps, pstep{kind: k, buf: n.Buffer, array: n.Array, lo: lo, shape: shape, pos: e.pos()})
		case *codegen.ZeroBuf:
			if e.opt.DryRun {
				continue
			}
			lo, shape := e.section(n.Buffer)
			steps = append(steps, pstep{kind: stepZero, buf: n.Buffer, lo: lo, shape: shape, pos: e.pos()})
		case *codegen.InitPass:
			steps = append(steps, pstep{kind: stepInit, array: n.Array, pos: e.pos()})
		case *codegen.Compute:
			base := make(map[string]int64, len(e.base))
			for k, v := range e.base {
				base[k] = v
			}
			// Scale the modelled duration for enclosing pruned loops: an
			// intra dim's extents sum to its full range across the trips; a
			// non-intra dim repeats the same points every trip.
			mul := 1.0
			for _, l := range e.dryLoops {
				if containsIndex(n.Intra, l.Index) {
					mul *= float64(l.Range) / float64(min(l.Tile, l.Range))
				} else {
					mul *= float64((l.Range + l.Tile - 1) / l.Tile)
				}
			}
			steps = append(steps, pstep{kind: stepCompute, comp: n, base: base, mul: mul, pos: e.pos()})
		}
	}
	return steps
}

// containsIndex reports whether the index list names x.
func containsIndex(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// pop is one scheduled pipeline operation.
type pop struct {
	// deps are the earlier operations this one must wait for.
	deps []*pop
	done chan struct{}
	err  error
	// inline is non-nil for steps executed in program order on the unit's
	// goroutine (zero, compute, init pass); disk I/O runs asynchronously.
	inline func() error
	// end is the modelled completion time on the pipeline timeline.
	end float64
	// lo/shape is the disk section for hazard tracking (nil lo on an init
	// pass: the whole array); write marks disk-mutating operations.
	lo, shape []int64
	write     bool
}

// pslot is one instance of a double-buffered plan buffer.
type pslot struct {
	t    *tensor.Tensor
	base []int64
	// filler is the last operation producing the slot's contents; users
	// are the operations consuming them since then.
	filler *pop
	users  []*pop
}

// pipeBuf is the double-buffer state of one plan buffer.
type pipeBuf struct {
	slots [2]*pslot
	cur   int
}

// pipeline is the asynchronous engine's state. All fields are owned by the
// scheduling goroutine during a unit; the executing goroutine touches only
// operation payloads, and the engine reads aggregate state between units
// (the barrier join orders those accesses).
type pipeline struct {
	e      *engine
	sem    chan struct{}
	budget int64
	aarrs  map[string]disk.AsyncArray
	bufs   map[*codegen.Buffer]*pipeBuf
	// pending tracks outstanding disk operations per array for section
	// hazard detection; completed entries are pruned on the fly.
	pending map[string][]*pop

	ioClock, compClock float64
	stats              PipelineStats

	// retryMu/retryExtra accumulate the modelled seconds of retried
	// disk attempts and their backoff delays (charged by the issue
	// goroutines' retryOp); the unit barrier folds them into the I/O
	// clock, keeping the overlapped timeline consistent with the
	// backend's per-attempt Stats charges.
	retryMu    sync.Mutex
	retryExtra float64

	// Cached metrics instruments (nil without Options.Metrics).
	mShadow, mInplace, mWriteBehind, mBarriers, mHazards *obs.Counter
	mDepth                                               *obs.Gauge
	mStall                                               *obs.Histogram
}

func newPipeline(e *engine, depth int) *pipeline {
	if depth <= 0 {
		depth = defaultPipelineDepth
	}
	p := &pipeline{
		e:     e,
		sem:   make(chan struct{}, depth),
		aarrs: map[string]disk.AsyncArray{},
		bufs:  map[*codegen.Buffer]*pipeBuf{},
	}
	if reg := e.opt.Metrics; reg != nil {
		p.mShadow = reg.Counter("exec.pipeline.prefetch.shadow")
		p.mInplace = reg.Counter("exec.pipeline.prefetch.inplace")
		p.mWriteBehind = reg.Counter("exec.pipeline.writebehind")
		p.mBarriers = reg.Counter("exec.pipeline.barriers")
		p.mHazards = reg.Counter("exec.pipeline.hazards")
		p.mDepth = reg.Gauge("exec.pipeline.inflight.depth")
		p.mStall = reg.Histogram("exec.pipeline.barrier.stall_seconds")
	}
	return p
}

// noteHazard marks a section-hazard wait (an operation blocked on n
// earlier conflicting disk operations) at its start time ts.
func (p *pipeline) noteHazard(array string, ts float64, n int) {
	if n == 0 {
		return
	}
	if p.mHazards != nil {
		p.mHazards.Inc()
	}
	if tr := p.e.opt.Tracer; tr != nil {
		tr.Instant(obs.Instant{Track: obs.TrackDisk, Name: "hazard " + array, TS: ts,
			Args: map[string]any{"waits_on": n}})
	}
}

// snapshot finalizes the stats (the overlapped critical path is the later
// of the two clocks).
func (p *pipeline) snapshot() *PipelineStats {
	// Retries charged after the last unit barrier (output fetch, staging
	// of a unit-less plan) have no barrier left to fold them; reconcile
	// the residue here so the timeline never undercounts retry time.
	p.retryMu.Lock()
	extra := p.retryExtra
	p.retryExtra = 0
	p.retryMu.Unlock()
	p.ioClock += extra
	p.stats.IOSeconds += extra
	p.stats.SerialSeconds += extra
	st := p.stats
	st.OverlappedSeconds = p.ioClock
	if p.compClock > st.OverlappedSeconds {
		st.OverlappedSeconds = p.compClock
	}
	return &st
}

// runUnit executes one top-level work unit through the pipeline and drains
// it (the unit barrier). The scheduling goroutine walks the step list,
// resolving hazards and issuing disk operations bounded by the in-flight
// semaphore; the calling goroutine executes the inline steps (zero,
// compute, init) in program order.
func (p *pipeline) runUnit(ns []codegen.Node) error {
	steps := p.e.genSteps(ns, nil)
	if len(steps) == 0 {
		return nil
	}
	if p.budget == 0 {
		p.budget = p.e.plan.Cfg.MemoryLimit
		if mb := p.e.plan.MemoryBytes(); mb > p.budget {
			// Never refuse a plan the serial engine would run: an
			// over-budget plan gets no shadow slots but still executes.
			p.budget = mb
		}
	}
	p.pending = map[string][]*pop{}
	// Full capacity: the scheduler never blocks sending inline steps, only
	// on the in-flight I/O semaphore.
	inlineQ := make(chan *pop, len(steps))
	var ops []*pop
	var genErr error
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		defer close(inlineQ)
		for i := range steps {
			if err := p.e.ctxErr(); err != nil {
				genErr = err
				return
			}
			op, err := p.schedule(&steps[i])
			if err != nil {
				genErr = err
				return
			}
			ops = append(ops, op)
			if op.inline != nil {
				inlineQ <- op
			}
		}
	}()
	for op := range inlineQ {
		var err error
		for _, d := range op.deps {
			<-d.done
			if d.err != nil && err == nil {
				err = d.err
			}
		}
		if err == nil {
			err = op.inline()
		}
		op.err = err
		close(op.done)
	}
	<-schedDone
	for _, op := range ops {
		<-op.done
	}
	// Fold retried attempts into the I/O clock before the barrier: the
	// schedule charged each operation once, retries charged the backend
	// again, and the difference lives in retryExtra.
	p.retryMu.Lock()
	extra := p.retryExtra
	p.retryExtra = 0
	p.retryMu.Unlock()
	if extra > 0 {
		p.ioClock += extra
		p.stats.IOSeconds += extra
		p.stats.SerialSeconds += extra
	}
	// Barrier: both engines are idle; synchronize the timeline clocks.
	// The stall is the idle time the faster engine spends waiting.
	stall := p.ioClock - p.compClock
	if stall < 0 {
		stall = -stall
	}
	if p.compClock > p.ioClock {
		p.ioClock = p.compClock
	} else {
		p.compClock = p.ioClock
	}
	p.stats.Barriers++
	if p.mBarriers != nil {
		p.mBarriers.Inc()
		p.mStall.Observe(stall)
	}
	if tr := p.e.opt.Tracer; tr != nil {
		tr.Instant(obs.Instant{Track: obs.TrackDisk, Name: "barrier", TS: p.ioClock,
			Args: map[string]any{"stall_s": stall}})
	}
	for _, op := range ops {
		if op.err != nil {
			return op.err
		}
	}
	return genErr
}

// schedule does the program-order bookkeeping for one step: slot and
// hazard resolution, timeline accounting, and (for disk steps) issuing the
// asynchronous operation.
func (p *pipeline) schedule(s *pstep) (*pop, error) {
	op := &pop{done: make(chan struct{})}
	switch s.kind {
	case stepRead:
		p.scheduleRead(s, op)
	case stepWrite:
		if err := p.scheduleWrite(s, op); err != nil {
			return nil, err
		}
	case stepZero:
		p.scheduleZero(s, op)
	case stepInit:
		p.scheduleInit(s, op)
	case stepCompute:
		if err := p.scheduleCompute(s, op); err != nil {
			return nil, err
		}
	}
	return op, nil
}

// buf returns the double-buffer state of a plan buffer.
func (p *pipeline) buf(b *codegen.Buffer) *pipeBuf {
	pb := p.bufs[b]
	if pb == nil {
		pb = &pipeBuf{}
		p.bufs[b] = pb
	}
	return pb
}

// arr returns the asynchronous view of a disk array.
func (p *pipeline) arr(name string) disk.AsyncArray {
	aa, ok := p.aarrs[name]
	if !ok {
		aa = disk.AsAsync(p.e.arrs[name])
		p.aarrs[name] = aa
	}
	return aa
}

// fillSlot picks the slot a fill (read or zero) targets and binds its
// tensor: the shadow slot when memory allows (enabling overlap with the
// previous instance's consumers), otherwise the current slot in place.
// shadow reports whether the fill flipped away from a live instance.
func (p *pipeline) fillSlot(s *pstep) (slot *pslot, shadow bool) {
	pb := p.buf(s.buf)
	n := int64(1)
	for _, x := range s.shape {
		n *= x
	}
	want := 1 - pb.cur
	if pb.slots[pb.cur] == nil {
		want = pb.cur // first use: no live instance to shadow
	} else if pb.slots[want] == nil && !p.e.opt.DryRun && p.e.curBytes+n*8 > p.budget {
		want = pb.cur // no headroom for a shadow slot: reuse in place
	}
	shadow = want != pb.cur
	pb.cur = want
	slot = pb.slots[want]
	if slot == nil {
		slot = &pslot{}
		pb.slots[want] = slot
	}
	if !p.e.opt.DryRun {
		dims := make([]int, len(s.shape))
		for i, x := range s.shape {
			dims[i] = int(x)
		}
		if slot.t == nil || slot.t.Size() != int(n) {
			// A fresh tensor, never a resize in place: already-issued
			// operations keep the instance they captured at scheduling
			// time.
			p.e.curBytes += (n - int64(sizeOf(slot.t))) * 8
			if p.e.curBytes > p.e.peakBytes {
				p.e.peakBytes = p.e.curBytes
			}
			p.e.noteBufBytes()
			slot.t = tensor.New(dimsOrScalar(dims)...)
		} else {
			slot.t = slot.t.Reshape(dimsOrScalar(dims)...)
		}
	}
	return slot, shadow
}

// slotDeps returns every operation still tied to a slot's current
// contents.
func slotDeps(slot *pslot) []*pop {
	var deps []*pop
	if slot.filler != nil {
		deps = append(deps, slot.filler)
	}
	deps = append(deps, slot.users...)
	return deps
}

// conflicts returns the outstanding operations on an array that a new
// operation over [lo, lo+shape) must wait for: a reader conflicts with
// pending writes, a writer with everything overlapping. Completed entries
// are pruned in passing. nil lo means the whole array.
func (p *pipeline) conflicts(array string, lo, shape []int64, isWrite bool) []*pop {
	var out []*pop
	live := p.pending[array][:0]
	for _, op := range p.pending[array] {
		select {
		case <-op.done:
			continue
		default:
		}
		live = append(live, op)
		if (isWrite || op.write) && boxesOverlap(lo, shape, op.lo, op.shape) {
			out = append(out, op)
		}
	}
	p.pending[array] = live
	return out
}

// boxesOverlap reports hyper-rectangle intersection; a nil box spans the
// whole array.
func boxesOverlap(alo, ash, blo, bsh []int64) bool {
	if alo == nil || blo == nil {
		return true
	}
	for i := range alo {
		if alo[i]+ash[i] <= blo[i] || blo[i]+bsh[i] <= alo[i] {
			return false
		}
	}
	return true
}

// track registers an outstanding disk operation for hazard detection.
func (p *pipeline) track(array string, op *pop) {
	p.pending[array] = append(p.pending[array], op)
}

// ioTime places an operation on the I/O-channel timeline and, with a
// tracer attached, emits it as a disk-track span.
func (p *pipeline) ioTime(op *pop, dur float64, name string, args map[string]any) {
	start := p.ioClock
	for _, d := range op.deps {
		if d.end > start {
			start = d.end
		}
	}
	op.end = start + dur
	p.ioClock = op.end
	p.stats.IOSeconds += dur
	p.stats.SerialSeconds += dur
	if tr := p.e.opt.Tracer; tr != nil {
		tr.Span(obs.Span{Track: obs.TrackDisk, Name: name, Start: start, Dur: dur, Args: args})
	}
}

// compTime places an operation on the compute timeline and, with a
// tracer attached, emits it as a compute-track span.
func (p *pipeline) compTime(op *pop, dur float64, name string, args map[string]any) {
	start := p.compClock
	for _, d := range op.deps {
		if d.end > start {
			start = d.end
		}
	}
	op.end = start + dur
	p.compClock = op.end
	p.stats.ComputeSeconds += dur
	p.stats.SerialSeconds += dur
	if tr := p.e.opt.Tracer; tr != nil {
		tr.Span(obs.Span{Track: obs.TrackCompute, Name: name, Start: start, Dur: dur, Args: args})
	}
}

// issue runs a disk operation asynchronously: wait for the hazards, then
// perform the backend call — under the run's retry policy — and resolve
// the completion. attemptDur is the operation's modelled duration, which
// retried attempts charge through the pipeline's retry account. The
// semaphore is taken on the scheduling goroutine, bounding how far issue
// runs ahead. A failure is attributed (array + position) here, so it
// surfaces typed and located at the unit barrier.
func (p *pipeline) issue(op *pop, read bool, array, pos string, attemptDur float64, run func() error) {
	p.sem <- struct{}{}
	if p.mDepth != nil {
		p.mDepth.Add(1)
	}
	go func() {
		defer func() {
			<-p.sem
			if p.mDepth != nil {
				p.mDepth.Add(-1)
			}
		}()
		for _, d := range op.deps {
			<-d.done
			if d.err != nil {
				op.err = d.err
				close(op.done)
				return
			}
		}
		if err := p.e.retryOp(array, attemptDur, run); err != nil {
			op.err = ioErr(read, array, pos, err)
		}
		close(op.done)
	}()
}

// addRetryExtra charges the modelled seconds of one retried attempt
// (backoff delay + repeat I/O); the next unit barrier folds the total
// into the I/O clock.
func (p *pipeline) addRetryExtra(seconds float64) {
	p.retryMu.Lock()
	p.retryExtra += seconds
	p.retryMu.Unlock()
}

func (p *pipeline) scheduleRead(s *pstep, op *pop) {
	slot, shadow := p.fillSlot(s)
	deps := slotDeps(slot)
	hazards := p.conflicts(s.array, s.lo, s.shape, false)
	deps = append(deps, hazards...)
	op.deps = deps
	op.lo, op.shape = s.lo, s.shape
	slot.filler = op
	slot.users = nil
	slot.base = s.lo
	p.track(s.array, op)
	n := int64(1)
	for _, x := range s.shape {
		n *= x
	}
	dur := p.e.plan.Cfg.Disk.ReadTime(n*8, 1)
	var args map[string]any
	if p.e.opt.Tracer != nil {
		args = map[string]any{"bytes": n * 8, "shadow": shadow}
	}
	p.ioTime(op, dur, "R "+s.array, args)
	p.noteHazard(s.array, op.end-dur, len(hazards))
	if shadow {
		p.stats.PrefetchedReads++
		if p.mShadow != nil {
			p.mShadow.Inc()
		}
	} else if p.mInplace != nil {
		p.mInplace.Inc()
	}
	var data []float64
	if slot.t != nil {
		data = slot.t.Data()
	}
	aa := p.arr(s.array)
	lo, shape := s.lo, s.shape
	p.issue(op, true, s.array, s.pos, dur, func() error {
		return aa.ReadAsync(lo, shape, data).Await()
	})
}

func (p *pipeline) scheduleWrite(s *pstep, op *pop) error {
	pb := p.bufs[s.buf]
	var slot *pslot
	if pb != nil {
		slot = pb.slots[pb.cur]
	}
	lo, shape := s.lo, s.shape
	var data []float64
	if slot == nil {
		// Dry-run plans skip zero-fills, so a write may target a buffer
		// with no instance; the generation-time section stands in.
		if !p.e.opt.DryRun {
			return fmt.Errorf("exec: write to %q at %s: write of uninstantiated buffer %q", s.array, s.pos, s.buf.Name)
		}
	} else {
		if slot.t != nil {
			lo = slot.base
			shape = dimsToInt64(slot.t.Dims())
			data = slot.t.Data()
		}
		op.deps = slotDeps(slot)
		slot.users = append(slot.users, op)
	}
	hazards := p.conflicts(s.array, lo, shape, true)
	op.deps = append(op.deps, hazards...)
	op.lo, op.shape = lo, shape
	op.write = true
	p.track(s.array, op)
	n := int64(1)
	for _, x := range shape {
		n *= x
	}
	dur := p.e.plan.Cfg.Disk.WriteTime(n*8, 1)
	var args map[string]any
	if p.e.opt.Tracer != nil {
		args = map[string]any{"bytes": n * 8}
	}
	p.ioTime(op, dur, "W "+s.array, args)
	p.noteHazard(s.array, op.end-dur, len(hazards))
	p.stats.WriteBehindWrites++
	if p.mWriteBehind != nil {
		p.mWriteBehind.Inc()
	}
	aa := p.arr(s.array)
	p.issue(op, false, s.array, s.pos, dur, func() error {
		return aa.WriteAsync(lo, shape, data).Await()
	})
	return nil
}

func (p *pipeline) scheduleZero(s *pstep, op *pop) {
	slot, _ := p.fillSlot(s)
	op.deps = slotDeps(slot)
	slot.filler = op
	slot.users = nil
	slot.base = s.lo
	t := slot.t // captured: a later fill re-binds the slot, not this tensor
	op.inline = func() error {
		if t != nil {
			t.Zero()
		}
		return nil
	}
	p.compTime(op, 0, "zero "+s.buf.Name, nil)
}

func (p *pipeline) scheduleInit(s *pstep, op *pop) {
	op.deps = p.conflicts(s.array, nil, nil, true)
	op.write = true
	p.track(s.array, op)
	name := s.array
	op.inline = func() error {
		if err := p.e.initPass(name); err != nil {
			return fmt.Errorf("exec: init pass over %q: %w", name, err)
		}
		return nil
	}
	bytes, writes := p.e.initCost(name)
	var args map[string]any
	if p.e.opt.Tracer != nil {
		args = map[string]any{"bytes": bytes, "writes": writes}
	}
	p.ioTime(op, p.e.plan.Cfg.Disk.WriteTime(bytes, writes), "init "+name, args)
}

// scheduleCompute binds the compute block to the current buffer instances
// and queues it for in-order inline execution. In data mode a missing
// instance is a plan error (as in the serial engine); in dry-run mode the
// block is timeline-only and missing instances simply contribute no
// dependencies.
func (p *pipeline) scheduleCompute(s *pstep, op *pop) error {
	c := s.comp
	curSlot := func(b *codegen.Buffer) *pslot {
		if pb := p.bufs[b]; pb != nil {
			return pb.slots[pb.cur]
		}
		return nil
	}
	outSlot := curSlot(c.Out)
	if outSlot == nil && !p.e.opt.DryRun {
		return fmt.Errorf("exec: compute into uninstantiated buffer %q at %s", c.Out.Name, s.pos)
	}
	var deps []*pop
	var outInst *bufInst
	if outSlot != nil {
		deps = append(deps, slotDeps(outSlot)...)
		outInst = &bufInst{t: outSlot.t, base: outSlot.base}
	}
	facInsts := make([]*bufInst, len(c.Factors))
	for i, f := range c.Factors {
		slot := curSlot(f)
		if slot == nil {
			if !p.e.opt.DryRun {
				return fmt.Errorf("exec: compute reads uninstantiated buffer %q at %s", f.Name, s.pos)
			}
			continue
		}
		if slot.filler != nil {
			deps = append(deps, slot.filler)
		}
		slot.users = append(slot.users, op)
		facInsts[i] = &bufInst{t: slot.t, base: slot.base}
	}
	if outSlot != nil {
		// The block mutates the output instance: it becomes the contents'
		// producer, and the waited-for users are spent.
		outSlot.filler = op
		outSlot.users = nil
	}
	op.deps = deps
	dryRun := p.e.opt.DryRun
	e := p.e
	base := s.base
	op.inline = func() error {
		if dryRun {
			return nil
		}
		e.computeWith(c, base, outInst, facInsts)
		return nil
	}
	mul := s.mul
	if mul <= 0 {
		mul = 1
	}
	p.compTime(op, p.e.computeSeconds(c, base, mul), "compute "+c.Out.Name, nil)
	return nil
}

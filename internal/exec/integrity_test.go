package exec

// Integrity-recovery suite: a corrupted block discovered by a verified
// read must escalate past the retry layer into RunResilient, which heals
// it — re-staging an input from its source tensor, or rolling the resume
// point back to the producer unit of a disk intermediate — and completes
// bit-identically to the clean run. Unhealable corruption fails with a
// structured attribution instead of looping.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// corruptOnRead wraps a data-mode Sim and flips one bit of the target
// array immediately before its nth read, beneath the checksum index — so
// that very read detects the rot, exactly like hardware bit rot under a
// scrubbing filesystem.
type corruptOnRead struct {
	disk.Backend
	target string
	nth    int
	seen   int
	done   bool
}

func (c *corruptOnRead) Inner() disk.Backend { return c.Backend }

func (c *corruptOnRead) Create(name string, dims []int64) (disk.Array, error) {
	a, err := c.Backend.Create(name, dims)
	if err != nil {
		return nil, err
	}
	return &corruptArray{c: c, inner: a}, nil
}

func (c *corruptOnRead) Open(name string) (disk.Array, error) {
	a, err := c.Backend.Open(name)
	if err != nil {
		return nil, err
	}
	return &corruptArray{c: c, inner: a}, nil
}

type corruptArray struct {
	c     *corruptOnRead
	inner disk.Array
}

func (a *corruptArray) Name() string  { return a.inner.Name() }
func (a *corruptArray) Dims() []int64 { return a.inner.Dims() }

func (a *corruptArray) ReadSection(lo, shape []int64, buf []float64) error {
	if a.inner.Name() == a.c.target && !a.c.done {
		a.c.seen++
		if a.c.seen == a.c.nth {
			a.c.done = true
			fl, ok := a.inner.(disk.BitFlipper)
			if !ok {
				panic("inner array is not a BitFlipper")
			}
			if err := fl.FlipBit(disk.FlatOffset(a.inner.Dims(), lo), 7); err != nil {
				return err
			}
		}
	}
	return a.inner.ReadSection(lo, shape, buf)
}

func (a *corruptArray) WriteSection(lo, shape []int64, buf []float64) error {
	return a.inner.WriteSection(lo, shape, buf)
}

func TestIntegrityHealRestageInput(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)
	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Rot the input on a mid-run read: the only way to get the pristine
	// data back is re-staging from the source tensor.
	be := &corruptOnRead{Backend: disk.NewSim(cfg.Disk, true), target: "A", nth: 2}
	reg := obs.NewRegistry()
	res, rep, err := RunResilient(nil, plan, be, inputs, Options{
		Retry:   disk.DefaultRetryPolicy(),
		Metrics: reg,
	}, RecoveryOptions{MaxRestarts: 3})
	if err != nil {
		t.Fatalf("heal failed: %v\nreport: %s", err, rep)
	}
	if rep.IntegrityDetected != 1 || rep.IntegrityHealed != 1 {
		t.Fatalf("integrity tallies wrong: %s", rep)
	}
	if len(rep.Heals) != 1 || rep.Heals[0].Array != "A" || rep.Heals[0].Method != "restage" {
		t.Fatalf("heal action wrong: %+v", rep.Heals)
	}
	if !strings.Contains(rep.String(), "integrity faults 1 (healed 1)") {
		t.Fatalf("report omits integrity: %s", rep)
	}
	snap := reg.Snapshot()
	if snap.Counters["exec.integrity.detected"] != 1 || snap.Counters["exec.integrity.healed"] != 1 {
		t.Fatalf("obs counters wrong: %+v", snap.Counters)
	}
	for name, want := range ref.Outputs {
		if d := tensor.MaxAbsDiff(res.Outputs[name], want); d != 0 {
			t.Fatalf("healed output %q off by %g", name, d)
		}
	}
}

func TestIntegrityHealRecomputesFromProducer(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)
	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Rot the output on its fetch read: a non-input heals by rolling the
	// resume point back to its producer unit and recomputing.
	be := &corruptOnRead{Backend: disk.NewSim(cfg.Disk, true), target: "B", nth: 1}
	res, rep, err := RunResilient(nil, plan, be, inputs, Options{
		Retry: disk.DefaultRetryPolicy(),
	}, RecoveryOptions{MaxRestarts: 3})
	if err != nil {
		t.Fatalf("heal failed: %v\nreport: %s", err, rep)
	}
	if rep.IntegrityHealed != 1 || len(rep.Heals) != 1 {
		t.Fatalf("integrity tallies wrong: %s", rep)
	}
	heal := rep.Heals[0]
	if heal.Array != "B" || heal.Method != "recompute" {
		t.Fatalf("heal action wrong: %+v", heal)
	}
	prod, ok := ProducerUnit(plan, "B")
	if !ok {
		t.Fatal("plan has no producer for B")
	}
	if heal.Resume.Item != prod || heal.Resume.Iter != 0 {
		t.Fatalf("heal resumed at %+v, want producer unit {%d, 0}", heal.Resume, prod)
	}
	for name, want := range ref.Outputs {
		if d := tensor.MaxAbsDiff(res.Outputs[name], want); d != 0 {
			t.Fatalf("recomputed output %q off by %g", name, d)
		}
	}
}

func TestIntegrityUnhealableFailsAttributed(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)

	// Pre-stage the inputs on the backend, then run with OpenInputs and
	// no source tensors: rotten input data has nowhere to come back from.
	sim := disk.NewSim(cfg.Disk, true)
	for name, in := range inputs {
		dims := make([]int64, len(in.Dims()))
		for i, d := range in.Dims() {
			dims[i] = int64(d)
		}
		if _, err := sim.Create(name, dims); err != nil {
			t.Fatal(err)
		}
		if err := sim.LoadArray(name, in.Data()); err != nil {
			t.Fatal(err)
		}
	}
	be := &corruptOnRead{Backend: sim, target: "A", nth: 2}
	_, rep, err := RunResilient(nil, plan, be, nil, Options{
		OpenInputs: true,
		Retry:      disk.DefaultRetryPolicy(),
	}, RecoveryOptions{MaxRestarts: 3})
	if err == nil {
		t.Fatal("unhealable corruption did not fail")
	}
	if !disk.IsIntegrity(err) {
		t.Fatalf("error lost its integrity typing: %v", err)
	}
	var ioe *disk.IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("error lost its IOError typing: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "cannot be healed") || !strings.Contains(msg, `"A"`) {
		t.Fatalf("error lacks heal attribution: %q", msg)
	}
	if rep.IntegrityDetected != 1 || rep.IntegrityHealed != 0 {
		t.Fatalf("integrity tallies wrong: %s", rep)
	}
}

// TestRunResilientAutoReopens exercises the probe path: with
// RecoveryOptions.Reopen unset, RunResilient asks the backend itself to
// reopen (disk.Reopener). The fault injector forwards the reopen to its
// wrapped FileStore and swaps in the rebuilt store, so recovery after a
// persistent-window fault really does reopen the file handles.
func TestRunResilientAutoReopens(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)
	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fs, err := disk.NewFileStore(dir, cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.Wrap(fs, fault.Config{Seed: 3, PersistentAfter: 30, PersistentOps: 1})
	res, rep, err := RunResilient(nil, plan, inj, inputs, Options{
		Retry: disk.DefaultRetryPolicy(),
	}, RecoveryOptions{}) // Reopen deliberately unset
	if err != nil {
		t.Fatalf("auto-reopen recovery failed: %v\nreport: %s", err, rep)
	}
	if rep.Restarts == 0 {
		t.Fatal("persistent window never forced a restart")
	}
	nfs, ok := inj.Inner().(*disk.FileStore)
	if !ok || nfs == fs {
		t.Fatalf("injector still wraps the original store (%T, same=%v)", inj.Inner(), nfs == fs)
	}
	defer nfs.Close()
	if d := tensor.MaxAbsDiff(res.Outputs["B"], ref.Outputs["B"]); d != 0 {
		t.Fatalf("auto-reopened output differs by %g", d)
	}
}

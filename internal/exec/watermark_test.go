package exec

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
)

// TestPeakBufferWithinStaticModel checks the memory invariant end to end:
// the engine's high-water mark of instantiated buffer bytes never exceeds
// the plan's static memory model (which in turn respects the machine
// limit for feasible assignments).
func TestPeakBufferWithinStaticModel(t *testing.T) {
	cases := []struct {
		prog   *loops.Program
		inputs map[string]interface{}
		tiles  map[string]int64
		n, v   int64
	}{
		{prog: loops.TwoIndexFused(10, 14), tiles: map[string]int64{"i": 4, "j": 5, "m": 6, "n": 7}},
		{prog: loops.FourIndexAbstract(6, 5), tiles: map[string]int64{"p": 3, "q": 4, "r": 2, "s": 5, "a": 2, "b": 3, "c": 4, "d": 2}},
	}
	in0 := expr.RandomInputs(expr.TwoIndexTransform(10, 14), 1)
	in1 := expr.RandomInputs(expr.FourIndexTransform(6, 5), 1)

	cfg := machine.Small(1 << 22)
	for i, tc := range cases {
		p := buildProblem(t, tc.prog, cfg)
		plan, err := codegen.Generate(p, p.Encode(tc.tiles, nil))
		if err != nil {
			t.Fatal(err)
		}
		be := disk.NewSim(cfg.Disk, true)
		inputs := in0
		if i == 1 {
			inputs = in1
		}
		res, err := Run(plan, be, inputs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		be.Close()
		if res.PeakBufferBytes <= 0 {
			t.Fatalf("case %d: no watermark recorded", i)
		}
		if res.PeakBufferBytes > plan.MemoryBytes() {
			t.Fatalf("case %d: runtime peak %d exceeds static model %d",
				i, res.PeakBufferBytes, plan.MemoryBytes())
		}
	}
}

func TestDryRunRecordsNoWatermark(t *testing.T) {
	prog := loops.TwoIndexFused(8, 8)
	cfg := machine.Small(1 << 20)
	p := buildProblem(t, prog, cfg)
	plan, err := codegen.Generate(p, p.Encode(map[string]int64{"i": 4, "j": 4, "m": 4, "n": 4}, nil))
	if err != nil {
		t.Fatal(err)
	}
	be := disk.NewSim(cfg.Disk, false)
	defer be.Close()
	res, err := Run(plan, be, nil, Options{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBufferBytes != 0 {
		t.Fatalf("dry run allocated buffers: %d", res.PeakBufferBytes)
	}
}

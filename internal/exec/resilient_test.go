package exec

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// fourIndexFaultPlan builds the paper's four-index transform at test
// scale with partial tiles — the acceptance workload for fault
// injection.
func fourIndexFaultPlan(t *testing.T) (*codegen.Plan, map[string]*tensor.Tensor, machine.Config) {
	t.Helper()
	n, v := int64(7), int64(5)
	prog := loops.FourIndexAbstract(n, v)
	cfg := machine.Small(1 << 22)
	p := buildProblem(t, prog, cfg)
	x := p.Encode(map[string]int64{"p": 3, "q": 4, "r": 2, "s": 5, "a": 2, "b": 3, "c": 4, "d": 1}, nil)
	plan, err := codegen.Generate(p, x)
	if err != nil {
		t.Fatal(err)
	}
	inputs := expr.RandomInputs(expr.FourIndexTransform(n, v), 7)
	return plan, inputs, cfg
}

// TestFourIndexTransientFaultsBitIdentical is the headline acceptance
// scenario: a four-index-transform run under seeded transient fault
// injection on reads and writes completes via retries, in both engines,
// with output bit-identical to the fault-free run and retry tallies
// matching the injector's schedule.
func TestFourIndexTransientFaultsBitIdentical(t *testing.T) {
	plan, inputs, cfg := fourIndexFaultPlan(t)

	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, pipeline := range []bool{false, true} {
		inj := fault.Wrap(disk.NewSim(cfg.Disk, true), fault.Config{
			Seed:           42,
			Rate:           0.05, // reads and writes
			TornRate:       0.05, // writes only
			LatencyRate:    0.02,
			LatencySeconds: 0.01,
		})
		// Depth 1 keeps the injector stream in program order so
		// MaxConsecutive caps what one op's retries can draw; plain Run
		// must absorb the schedule deterministically (no restart net).
		res, err := Run(plan, inj, inputs, Options{
			Pipeline:      pipeline,
			PipelineDepth: 1,
			Retry:         disk.DefaultRetryPolicy(),
		})
		if err != nil {
			t.Fatalf("pipeline=%v: faulted run failed: %v", pipeline, err)
		}
		c := inj.Counts()
		if c.Faults() == 0 {
			t.Fatalf("pipeline=%v: schedule injected no faults (ops=%d)", pipeline, c.Ops)
		}
		if res.Retry.FaultsSeen != c.Faults() {
			t.Fatalf("pipeline=%v: engine saw %d faults, injector scheduled %d",
				pipeline, res.Retry.FaultsSeen, c.Faults())
		}
		if res.Retry.Retries < c.Faults() || res.Retry.RetrySeconds <= 0 {
			t.Fatalf("pipeline=%v: implausible retry tallies %+v for %d faults",
				pipeline, res.Retry, c.Faults())
		}
		for name, want := range ref.Outputs {
			if d := tensor.MaxAbsDiff(res.Outputs[name], want); d != 0 {
				t.Fatalf("pipeline=%v: output %q differs from fault-free run by %g", pipeline, name, d)
			}
		}
	}
}

// TestRunResilientRecoversFromPersistentFaults exercises the full
// recovery loop: a persistent-fault window aborts the run, RunResilient
// rolls back to a checkpoint and resumes, and after the window is
// consumed the run completes bit-identically.
func TestRunResilientRecoversFromPersistentFaults(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)
	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, pipeline := range []bool{false, true} {
		inj := fault.Wrap(disk.NewSim(cfg.Disk, true), fault.Config{
			Seed:            1,
			Rate:            0.03,
			PersistentAfter: 40,
			PersistentOps:   2,
		})
		res, rep, err := RunResilient(nil, plan, inj, inputs, Options{
			Pipeline: pipeline,
			Retry:    disk.DefaultRetryPolicy(),
		}, RecoveryOptions{MaxRestarts: 4})
		if err != nil {
			t.Fatalf("pipeline=%v: recovery failed: %v\nreport: %s", pipeline, err, rep)
		}
		c := inj.Counts()
		if c.Persistent == 0 {
			t.Fatalf("pipeline=%v: persistent window never hit (ops=%d)", pipeline, c.Ops)
		}
		if rep.Restarts < 1 || rep.Restarts > c.Persistent {
			t.Fatalf("pipeline=%v: restarts %d outside [1, %d]", pipeline, rep.Restarts, c.Persistent)
		}
		if !pipeline && rep.Restarts != c.Persistent {
			// Serial runs abort on the first persistent fault, so each
			// restart consumes exactly one window ordinal.
			t.Fatalf("serial: restarts %d != persistent faults %d", rep.Restarts, c.Persistent)
		}
		if rep.FaultsSeen != c.Faults() {
			t.Fatalf("pipeline=%v: report saw %d faults, injector scheduled %d",
				pipeline, rep.FaultsSeen, c.Faults())
		}
		if len(rep.ResumePoints) != int(rep.Restarts) {
			t.Fatalf("pipeline=%v: %d resume points for %d restarts", pipeline, len(rep.ResumePoints), rep.Restarts)
		}
		if !RecoverySafe(plan) {
			for _, cp := range rep.ResumePoints {
				if cp != (Checkpoint{}) {
					t.Fatalf("pipeline=%v: non-recovery-safe plan must restart from zero, got %+v", pipeline, cp)
				}
			}
		}
		if rep.TotalStats.Time() <= ref.Stats.Time() {
			t.Fatalf("pipeline=%v: recovery total time %.3f not above clean run %.3f",
				pipeline, rep.TotalStats.Time(), ref.Stats.Time())
		}
		if res.Recovery != rep {
			t.Fatalf("pipeline=%v: Result.Recovery not attached", pipeline)
		}
		if d := tensor.MaxAbsDiff(res.Outputs["B"], ref.Outputs["B"]); d != 0 {
			t.Fatalf("pipeline=%v: recovered output differs by %g", pipeline, d)
		}
	}
}

// TestRunResilientReopensFileStore covers the crashed-process shape: the
// backend is rebuilt via Reopen before each restart, and the fault
// schedule keeps running across the swap.
func TestRunResilientReopensFileStore(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)
	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fs, err := disk.NewFileStore(dir, cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.Wrap(fs, fault.Config{Seed: 3, PersistentAfter: 30, PersistentOps: 1})
	reopens := 0
	res, rep, err := RunResilient(nil, plan, inj, inputs, Options{
		Retry: disk.DefaultRetryPolicy(),
	}, RecoveryOptions{
		Reopen: func() (disk.Backend, error) {
			reopens++
			fs.Close()
			nfs, err := disk.NewFileStore(dir, cfg.Disk)
			if err != nil {
				return nil, err
			}
			fs = nfs
			inj.Swap(nfs)
			return inj, nil
		},
	})
	if err != nil {
		t.Fatalf("recovery with reopen failed: %v\nreport: %s", err, rep)
	}
	defer fs.Close()
	if reopens == 0 || rep.Restarts == 0 {
		t.Fatalf("reopen path not exercised: %d reopens, %d restarts", reopens, rep.Restarts)
	}
	if d := tensor.MaxAbsDiff(res.Outputs["B"], ref.Outputs["B"]); d != 0 {
		t.Fatalf("recovered FileStore output differs by %g", d)
	}
}

// TestRunResilientExhaustedBudgetFailsTyped is the negative acceptance
// scenario: a persistent fault outlasting the restart budget must fail
// with a typed, attributed error — not hang or silently truncate.
func TestRunResilientExhaustedBudgetFailsTyped(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)

	for _, pipeline := range []bool{false, true} {
		inj := fault.Wrap(disk.NewSim(cfg.Disk, true), fault.Config{
			Seed:            2,
			PersistentAfter: 30,
			PersistentOps:   1 << 30, // effectively forever
		})
		res, rep, err := RunResilient(nil, plan, inj, inputs, Options{
			Pipeline: pipeline,
			Retry:    disk.DefaultRetryPolicy(),
		}, RecoveryOptions{MaxRestarts: 2})
		if err == nil {
			t.Fatalf("pipeline=%v: expected failure, got result %+v", pipeline, res)
		}
		if rep.Restarts != 2 {
			t.Fatalf("pipeline=%v: budget of 2 restarts, used %d", pipeline, rep.Restarts)
		}
		var ioe *disk.IOError
		if !errors.As(err, &ioe) {
			t.Fatalf("pipeline=%v: error not typed: %v", pipeline, err)
		}
		if ioe.Transient() || !errors.Is(err, fault.ErrPersistent) {
			t.Fatalf("pipeline=%v: wrong classification: %v", pipeline, err)
		}
		var re *RunError
		if !errors.As(err, &re) || !re.Staged || re.Checkpoint == nil {
			t.Fatalf("pipeline=%v: missing RunError restart state: %v", pipeline, err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "exec: ") || !strings.Contains(msg, ioe.Array) || !strings.Contains(msg, " at ") {
			t.Fatalf("pipeline=%v: error lacks attribution: %q", pipeline, msg)
		}
	}
}

// failNthWrite is a targeted injector for the write-behind regression
// test: it fails the nth asynchronous write to one array, at completion
// time — exactly where a real backend error would appear.
type failNthWrite struct {
	*disk.Sim
	array string
	mu    sync.Mutex
	n     int
	seen  int
}

// hit reports whether this write is the designated failure.
func (f *failNthWrite) hit() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seen++
	return f.seen == f.n
}

func (f *failNthWrite) total() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

func (f *failNthWrite) Create(name string, dims []int64) (disk.Array, error) {
	a, err := f.Sim.Create(name, dims)
	if err != nil {
		return nil, err
	}
	return &failNthWriteArray{AsyncArray: disk.AsAsync(a), f: f}, nil
}

func (f *failNthWrite) Open(name string) (disk.Array, error) {
	a, err := f.Sim.Open(name)
	if err != nil {
		return nil, err
	}
	return &failNthWriteArray{AsyncArray: disk.AsAsync(a), f: f}, nil
}

type failNthWriteArray struct {
	disk.AsyncArray
	f *failNthWrite
}

type errAfter struct {
	inner disk.Completion
	err   error
}

func (c *errAfter) Await() error {
	if err := c.inner.Await(); err != nil {
		return err
	}
	return c.err
}

func (a *failNthWriteArray) WriteAsync(lo, shape []int64, buf []float64) disk.Completion {
	c := a.AsyncArray.WriteAsync(lo, shape, buf)
	if a.AsyncArray.Name() != a.f.array || !a.f.hit() {
		return c
	}
	return &errAfter{inner: c, err: disk.NewIOError("write", a.f.array, lo, shape, false,
		fmt.Errorf("simulated device error"))}
}

// TestWriteBehindFaultSurfacesAtBarrier is the regression test for the
// async write-behind completion path: a backend error on a write-behind
// must surface at the next unit barrier — typed, with array and position
// attribution — not hang, and not wait for Close.
func TestWriteBehindFaultSurfacesAtBarrier(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)

	// Count the output writes of a clean run, then fail one in the middle.
	counter := &failNthWrite{Sim: disk.NewSim(cfg.Disk, true), array: "B", n: -1}
	if _, err := Run(plan, counter, inputs, Options{Pipeline: true}); err != nil {
		t.Fatal(err)
	}
	total := counter.total()
	if total < 2 {
		t.Fatalf("plan performs only %d write-behinds to B; need a mid-run one", total)
	}

	be := &failNthWrite{Sim: disk.NewSim(cfg.Disk, true), array: "B", n: total / 2}
	_, err := Run(plan, be, inputs, Options{Pipeline: true})
	if err == nil {
		t.Fatal("faulted write-behind did not surface")
	}
	var ioe *disk.IOError
	if !errors.As(err, &ioe) || ioe.Op != "write" || ioe.Array != "B" {
		t.Fatalf("write-behind error not typed/attributed: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, `write to "B"`) || !strings.Contains(msg, " at ") {
		t.Fatalf("write-behind error lacks array+position attribution: %q", msg)
	}
	// With retries enabled the same mid-pipeline write fault, made
	// transient, is absorbed and the run completes bit-identically.
	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1 keeps the injector's op stream in program order: an op's
	// retries are consecutive injector ops, so MaxConsecutive bounds the
	// faults one op can draw and recovery is guaranteed, not probabilistic.
	// (At depth >1 interleaved successes reset the consecutive counter and
	// an unlucky op can fault on every retry attempt.)
	inj := fault.Wrap(disk.NewSim(cfg.Disk, true), fault.Config{Seed: 8, TornRate: 0.3})
	res, err := Run(plan, inj, inputs, Options{Pipeline: true, PipelineDepth: 1, Retry: disk.DefaultRetryPolicy()})
	if err != nil {
		t.Fatalf("retried torn writes should recover: %v", err)
	}
	if inj.Counts().Torn == 0 {
		t.Fatal("no torn writes injected")
	}
	if d := tensor.MaxAbsDiff(res.Outputs["B"], ref.Outputs["B"]); d != 0 {
		t.Fatalf("recovered pipelined output differs by %g", d)
	}
}

// TestRecoverySafe pins the static predicate gating mid-plan resumes.
func TestRecoverySafe(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	var read, write *codegen.IO
	var find func(ns []codegen.Node)
	find = func(ns []codegen.Node) {
		for _, n := range ns {
			switch n := n.(type) {
			case *codegen.Loop:
				find(n.Body)
			case *codegen.IO:
				if n.Read && read == nil {
					read = n
				}
				if !n.Read && write == nil {
					write = n
				}
			}
		}
	}
	find(plan.Body)
	if read == nil || write == nil || read.Array == write.Array {
		t.Fatalf("plan lacks distinct read/write arrays (read=%v write=%v)", read, write)
	}

	mk := func(body ...codegen.Node) *codegen.Plan {
		p2 := *plan
		p2.Body = body
		return &p2
	}
	loop := func(body ...codegen.Node) *codegen.Loop {
		return &codegen.Loop{Index: "i", Range: 4, Tile: 2, Body: body}
	}
	if !RecoverySafe(mk(read)) {
		t.Fatal("top-level read must be recovery safe")
	}
	if !RecoverySafe(mk(loop(read, write))) {
		t.Fatal("item reading and writing distinct arrays must be recovery safe")
	}
	rw := &codegen.IO{Read: true, Array: write.Array, Buffer: write.Buffer}
	if RecoverySafe(mk(loop(rw, write))) {
		t.Fatal("read-modify-write item must not be recovery safe")
	}
	if RecoverySafe(mk(loop(read), loop(&codegen.InitPass{Array: read.Array}, read))) {
		t.Fatal("init pass must count as a write")
	}
	if RecoverySafe(mk(write)) {
		t.Fatal("non-checkpointable plan must not be recovery safe")
	}
	if !RecoverySafe(mk(loop(&codegen.InitPass{Array: write.Array}, write))) {
		t.Fatal("init plus write of the same array (no read) must be recovery safe")
	}
}

// TestRetryTimelineAndMetrics checks modelled-time reconciliation: the
// retried attempts' extra seconds are charged to the run's timeline and
// mirrored into the metrics registry.
func TestRetryTimelineAndMetrics(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)

	clean, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	// Depth 1: see TestWriteBehindFaultSurfacesAtBarrier — a serial op
	// stream lets MaxConsecutive guarantee that retries absorb the
	// schedule (plain Run has no restart net behind it).
	inj := fault.Wrap(disk.NewSim(cfg.Disk, true), fault.Config{Seed: 6, Rate: 0.2, TornRate: 0.1})
	res, err := Run(plan, inj, inputs, Options{
		Pipeline:      true,
		PipelineDepth: 1,
		Retry:         disk.DefaultRetryPolicy(),
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retry.Retries == 0 {
		t.Fatal("schedule produced no retries")
	}
	snap := reg.Snapshot()
	if snap.Counters["exec.io.faults"] != res.Retry.FaultsSeen ||
		snap.Counters["exec.io.retries"] != res.Retry.Retries {
		t.Fatalf("metrics mirror mismatch: %+v vs %v", res.Retry, snap.Counters)
	}
	// The pipelined timeline folds the retry seconds in at barriers:
	// the faulted run's modelled I/O exceeds the clean run's by at
	// least the retried attempts' time (backoff delays included).
	extra := res.Pipeline.IOSeconds - clean.Pipeline.IOSeconds
	if extra < res.Retry.RetrySeconds-1e-9 {
		t.Fatalf("timeline missing retry charge: extra I/O %.6f < retry seconds %.6f",
			extra, res.Retry.RetrySeconds)
	}
	// And the backend's Stats see every physical attempt: strictly more
	// ops than the clean run.
	if res.Stats.ReadOps+res.Stats.WriteOps <= clean.Stats.ReadOps+clean.Stats.WriteOps {
		t.Fatal("retried attempts not charged to backend stats")
	}
}

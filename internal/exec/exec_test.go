package exec

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/nlp"
	"repro/internal/placement"
	"repro/internal/tensor"
	"repro/internal/tiling"
)

// buildProblem assembles the pipeline up to the NLP for a test program.
func buildProblem(t testing.TB, prog *loops.Program, cfg machine.Config) *nlp.Problem {
	t.Helper()
	tree, err := tiling.Tile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := placement.Enumerate(tree, cfg, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nlp.Build(m)
}

// runPlan generates and executes a plan on the data-mode simulator.
func runPlan(t *testing.T, p *nlp.Problem, x []int64, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, disk.Stats) {
	t.Helper()
	plan, err := codegen.Generate(p, x)
	if err != nil {
		t.Fatal(err)
	}
	be := disk.NewSim(p.Model.Cfg.Disk, true)
	defer be.Close()
	res, err := Run(plan, be, inputs, Options{})
	if err != nil {
		t.Fatalf("run failed:\n%s\nerror: %v", plan, err)
	}
	return res.Outputs, res.Stats
}

// TestAllPlacementCombinationsTwoIndex is the central correctness theorem
// of the repo: for the fused two-index transform, EVERY combination of
// candidate placements, across several tile shapes (dividing and
// non-dividing), executes to exactly the same values as the reference
// interpreter.
func TestAllPlacementCombinationsTwoIndex(t *testing.T) {
	nmn, nij := int64(6), int64(8)
	prog := loops.TwoIndexFused(nmn, nij)
	cfg := machine.Small(1 << 20)
	p := buildProblem(t, prog, cfg)

	c := expr.TwoIndexTransform(nmn, nij)
	inputs := expr.RandomInputs(c, 99)
	want, err := loops.Interpret(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}

	tileSets := []map[string]int64{
		{"i": 8, "j": 8, "m": 6, "n": 6}, // full: single tile
		{"i": 4, "j": 4, "m": 3, "n": 3}, // dividing
		{"i": 3, "j": 5, "m": 4, "n": 5}, // non-dividing (partial tiles)
		{"i": 1, "j": 1, "m": 1, "n": 1}, // degenerate single elements
	}

	// Enumerate the full cross product of candidate selections.
	nCombos := 1
	for ci := 0; ci < p.NumChoices(); ci++ {
		nCombos *= p.NumCandidates(ci)
	}
	if nCombos < 8 {
		t.Fatalf("expected a nontrivial selection space, got %d", nCombos)
	}
	for _, tiles := range tileSets {
		for combo := 0; combo < nCombos; combo++ {
			sel := map[string]int{}
			rest := combo
			for ci := 0; ci < p.NumChoices(); ci++ {
				m := p.NumCandidates(ci)
				sel[p.Choices[ci].Name] = rest % m
				rest /= m
			}
			x := p.Encode(tiles, sel)
			got, _ := runPlan(t, p, x, inputs)
			if d := tensor.MaxAbsDiff(got["B"], want["B"]); d > 1e-9 {
				t.Fatalf("tiles %v combo %d (%v): result differs by %g", tiles, combo, sel, d)
			}
		}
	}
}

func TestFourIndexExecutionMatchesReference(t *testing.T) {
	n, v := int64(7), int64(5)
	prog := loops.FourIndexAbstract(n, v)
	cfg := machine.Small(1 << 22)
	p := buildProblem(t, prog, cfg)

	c := expr.FourIndexTransform(n, v)
	inputs := expr.RandomInputs(c, 7)
	want, err := loops.Interpret(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}

	// Default candidates with a few tile shapes, including partial tiles.
	for _, tiles := range []map[string]int64{
		{"p": 7, "q": 7, "r": 7, "s": 7, "a": 5, "b": 5, "c": 5, "d": 5},
		{"p": 3, "q": 4, "r": 2, "s": 5, "a": 2, "b": 3, "c": 4, "d": 1},
	} {
		x := p.Encode(tiles, nil)
		got, _ := runPlan(t, p, x, inputs)
		if d := tensor.MaxAbsDiff(got["B"], want["B"]); d > 1e-8 {
			t.Fatalf("tiles %v: four-index result differs by %g", tiles, d)
		}
	}
}

func TestFourIndexDiskIntermediates(t *testing.T) {
	// Force T2 and T3 to their disk candidates (selection index past the
	// in-memory candidate) and check correctness.
	n, v := int64(6), int64(4)
	prog := loops.FourIndexAbstract(n, v)
	cfg := machine.Small(1 << 22)
	p := buildProblem(t, prog, cfg)

	c := expr.FourIndexTransform(n, v)
	inputs := expr.RandomInputs(c, 8)
	want, err := loops.Interpret(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	tiles := map[string]int64{"p": 3, "q": 2, "r": 3, "s": 2, "a": 2, "b": 2, "c": 3, "d": 2}
	sel := map[string]int{}
	for ci := 0; ci < p.NumChoices(); ci++ {
		name := p.Choices[ci].Name
		// Select the last candidate everywhere: for intermediates that is
		// always a disk strategy; for I/O arrays an outer placement.
		sel[name] = p.NumCandidates(ci) - 1
	}
	x := p.Encode(tiles, sel)
	got, stats := runPlan(t, p, x, inputs)
	if d := tensor.MaxAbsDiff(got["B"], want["B"]); d > 1e-8 {
		t.Fatalf("disk-intermediate run differs by %g", d)
	}
	if stats.WriteOps == 0 || stats.ReadOps == 0 {
		t.Fatal("disk intermediates must produce I/O traffic")
	}
}

func TestFileBackendMatchesSim(t *testing.T) {
	nmn, nij := int64(5), int64(6)
	prog := loops.TwoIndexFused(nmn, nij)
	cfg := machine.Small(1 << 20)
	p := buildProblem(t, prog, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(nmn, nij), 3)

	tiles := map[string]int64{"i": 2, "j": 3, "m": 2, "n": 3}
	x := p.Encode(tiles, nil)
	plan, err := codegen.Generate(p, x)
	if err != nil {
		t.Fatal(err)
	}

	sim := disk.NewSim(cfg.Disk, true)
	simRes, err := Run(plan, sim, inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := disk.NewFileStore(t.TempDir(), cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fileRes, err := Run(plan, fs, inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(simRes.Outputs["B"], fileRes.Outputs["B"]); d != 0 {
		t.Fatalf("file backend differs from simulator by %g", d)
	}
	if simRes.Stats != fileRes.Stats {
		t.Fatalf("modelled stats differ between backends: %+v vs %+v", simRes.Stats, fileRes.Stats)
	}
}

func TestDryRunMatchesDataRunIO(t *testing.T) {
	// The dry run must produce exactly the same I/O statistics as a real
	// execution — it is the paper-scale measurement path.
	nmn, nij := int64(6), int64(8)
	prog := loops.TwoIndexFused(nmn, nij)
	cfg := machine.Small(1 << 20)
	p := buildProblem(t, prog, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(nmn, nij), 4)

	for combo := 0; combo < 4; combo++ {
		sel := map[string]int{"A": combo % 2, "B": combo / 2}
		x := p.Encode(map[string]int64{"i": 3, "j": 5, "m": 2, "n": 4}, sel)
		plan, err := codegen.Generate(p, x)
		if err != nil {
			t.Fatal(err)
		}
		data := disk.NewSim(cfg.Disk, true)
		dataRes, err := Run(plan, data, inputs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dry := disk.NewSim(cfg.Disk, false)
		dryRes, err := Run(plan, dry, nil, Options{DryRun: true})
		if err != nil {
			t.Fatal(err)
		}
		if dataRes.Stats != dryRes.Stats {
			t.Fatalf("combo %d: dry-run stats %+v differ from data-run %+v", combo, dryRes.Stats, dataRes.Stats)
		}
	}
}

func TestDryRunAtPaperScale(t *testing.T) {
	// The Fig. 4 configuration: N=35000/40000, terabyte-scale virtual
	// arrays; the dry run must execute in reasonable time.
	prog := loops.TwoIndexFused(35000, 40000)
	cfg := machine.OSCItanium2()
	cfg.MemoryLimit = 1 * machine.GB
	p := buildProblem(t, prog, cfg)
	x := p.Encode(map[string]int64{"i": 3000, "j": 3000, "m": 3000, "n": 3000}, nil)
	plan, err := codegen.Generate(p, x)
	if err != nil {
		t.Fatal(err)
	}
	be := disk.NewSim(cfg.Disk, false)
	res, err := Run(plan, be, nil, Options{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BytesRead == 0 || res.Stats.Time() <= 0 {
		t.Fatalf("paper-scale dry run produced no I/O: %+v", res.Stats)
	}
	// A's data alone is 12.8 GB; total reads must exceed it.
	if res.Stats.BytesRead < 40000*40000*8 {
		t.Fatalf("reads %d below the size of A", res.Stats.BytesRead)
	}
}

func TestMissingInputError(t *testing.T) {
	prog := loops.TwoIndexFused(4, 4)
	cfg := machine.Small(1 << 20)
	p := buildProblem(t, prog, cfg)
	plan, err := codegen.Generate(p, p.Encode(map[string]int64{"i": 2, "j": 2, "m": 2, "n": 2}, nil))
	if err != nil {
		t.Fatal(err)
	}
	be := disk.NewSim(cfg.Disk, true)
	if _, err := Run(plan, be, map[string]*tensor.Tensor{}, Options{}); err == nil {
		t.Fatal("missing inputs must error")
	}
}

func TestPlanMemoryWithinLimitWhenFeasible(t *testing.T) {
	prog := loops.TwoIndexFused(30, 40)
	cfg := machine.Small(64 << 10)
	p := buildProblem(t, prog, cfg)
	x := p.Encode(map[string]int64{"i": 10, "j": 10, "m": 10, "n": 10}, nil)
	if !p.Feasible(x) {
		t.Skip("hand point infeasible; adjust test")
	}
	plan, err := codegen.Generate(p, x)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MemoryBytes() > cfg.MemoryLimit {
		t.Fatalf("plan memory %d exceeds limit %d despite feasible x", plan.MemoryBytes(), cfg.MemoryLimit)
	}
}

func TestPredictedDominatesMeasured(t *testing.T) {
	// The predictor pads partial tiles, so measured bytes ≤ predicted
	// bytes must hold for any configuration.
	prog := loops.TwoIndexFused(35, 47) // awkward sizes: many partial tiles
	cfg := machine.Small(1 << 20)
	p := buildProblem(t, prog, cfg)
	for _, tiles := range []map[string]int64{
		{"i": 10, "j": 9, "m": 8, "n": 33},
		{"i": 47, "j": 47, "m": 35, "n": 35},
	} {
		x := p.Encode(tiles, nil)
		plan, err := codegen.Generate(p, x)
		if err != nil {
			t.Fatal(err)
		}
		be := disk.NewSim(cfg.Disk, false)
		res, err := Run(plan, be, nil, Options{DryRun: true})
		if err != nil {
			t.Fatal(err)
		}
		measured := float64(res.Stats.BytesRead + res.Stats.BytesWritten)
		predicted := plan.PredictedReadBytes + plan.PredictedWriteBytes
		if measured > predicted*(1+1e-9) {
			t.Fatalf("tiles %v: measured bytes %.0f exceed predicted %.0f", tiles, measured, predicted)
		}
	}
}

package exec

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/tensor"
)

// TestParallelComputeMatchesSerial checks that worker-split intra-tile
// compute is bit-identical to serial execution for both workloads,
// including partial tiles and a scalar-output fused intermediate (which
// cannot be split and must fall back to serial).
func TestParallelComputeMatchesSerial(t *testing.T) {
	cases := []struct {
		name   string
		prog   *loops.Program
		inputs map[string]*tensor.Tensor
		tiles  map[string]int64
	}{
		{
			name:   "two-index",
			prog:   loops.TwoIndexFused(9, 11),
			inputs: expr.RandomInputs(expr.TwoIndexTransform(9, 11), 1),
			tiles:  map[string]int64{"i": 4, "j": 5, "m": 3, "n": 4},
		},
		{
			name:   "four-index",
			prog:   loops.FourIndexAbstract(6, 5),
			inputs: expr.RandomInputs(expr.FourIndexTransform(6, 5), 2),
			tiles:  map[string]int64{"p": 3, "q": 4, "r": 2, "s": 5, "a": 2, "b": 3, "c": 4, "d": 2},
		},
	}
	for _, tc := range cases {
		cfg := machine.Small(1 << 22)
		p := buildProblem(t, tc.prog, cfg)
		plan, err := codegen.Generate(p, p.Encode(tc.tiles, nil))
		if err != nil {
			t.Fatal(err)
		}
		var serial *tensor.Tensor
		for _, workers := range []int{1, 2, 4, 7} {
			be := disk.NewSim(cfg.Disk, true)
			res, err := Run(plan, be, tc.inputs, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			be.Close()
			out := res.Outputs["B"]
			if workers == 1 {
				serial = out
				continue
			}
			if d := tensor.MaxAbsDiff(out, serial); d != 0 {
				t.Fatalf("%s workers=%d: differs from serial by %g (must be bit-identical)", tc.name, workers, d)
			}
		}
	}
}

func BenchmarkComputeWorkers(b *testing.B) {
	prog := loops.TwoIndexFused(96, 128)
	cfg := machine.Small(1 << 22)
	p := buildProblem(b, prog, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(96, 128), 3)
	plan, err := codegen.Generate(p, p.Encode(map[string]int64{"i": 32, "j": 32, "m": 32, "n": 32}, nil))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(benchName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be := disk.NewSim(cfg.Disk, true)
				if _, err := Run(plan, be, inputs, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
				be.Close()
			}
		})
	}
}

func benchName(w int) string {
	if w == 1 {
		return "serial"
	}
	return "parallel4"
}

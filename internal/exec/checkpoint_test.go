package exec

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/tensor"
)

// crashResumePlan builds a checkpointable fig4-style plan at test scale.
func crashResumePlan(t *testing.T, cfg machine.Config) *codegen.Plan {
	t.Helper()
	prog := loops.TwoIndexFused(12, 16)
	p := buildProblem(t, prog, cfg)
	plan, err := codegen.Generate(p, p.Encode(map[string]int64{"i": 3, "j": 4, "m": 5, "n": 6}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !Checkpointable(plan) {
		t.Fatalf("expected checkpointable plan:\n%s", plan)
	}
	return plan
}

func TestCrashAndResumeMatchesUninterrupted(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 9)

	// Uninterrupted reference run.
	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Crash after k top-level iterations, then resume on the SAME
	// persistent backend, for every crash point.
	for stop := int64(1); stop <= 4; stop++ {
		dir := t.TempDir()
		fs1, err := disk.NewFileStore(dir, cfg.Disk)
		if err != nil {
			t.Fatal(err)
		}
		first, err := Run(plan, fs1, inputs, Options{StopAfter: stop})
		if err != nil {
			t.Fatal(err)
		}
		if first.Stopped == nil {
			t.Fatalf("stop=%d: run was not interrupted", stop)
		}
		if first.Outputs != nil {
			t.Fatal("stopped run must not fetch outputs")
		}
		fs1.Close() // the crash

		fs2, err := disk.NewFileStore(dir, cfg.Disk)
		if err != nil {
			t.Fatal(err)
		}
		second, err := Run(plan, fs2, nil, Options{Resume: first.Stopped})
		if err != nil {
			t.Fatalf("stop=%d: resume: %v", stop, err)
		}
		if second.Stopped != nil {
			t.Fatal("resumed run should complete")
		}
		if d := tensor.MaxAbsDiff(second.Outputs["B"], ref.Outputs["B"]); d > 1e-12 {
			t.Fatalf("stop=%d: resumed result differs from uninterrupted by %g", stop, d)
		}
		fs2.Close()
	}
}

func TestDoubleCrashResume(t *testing.T) {
	// Crash twice at different points, resuming each time.
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 10)
	ref, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fs, err := disk.NewFileStore(dir, cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(plan, fs, inputs, Options{StopAfter: 1})
	if err != nil || r1.Stopped == nil {
		t.Fatalf("first leg: %v / %+v", err, r1)
	}
	fs.Close()

	fs, err = disk.NewFileStore(dir, cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(plan, fs, nil, Options{Resume: r1.Stopped, StopAfter: 2})
	if err != nil || r2.Stopped == nil {
		t.Fatalf("second leg: %v / %+v", err, r2)
	}
	fs.Close()

	fs, err = disk.NewFileStore(dir, cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	r3, err := Run(plan, fs, nil, Options{Resume: r2.Stopped})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(r3.Outputs["B"], ref.Outputs["B"]); d > 1e-12 {
		t.Fatalf("double-resume result differs by %g", d)
	}
}

func TestStopAfterBeyondEndCompletes(t *testing.T) {
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(12, 16), 11)
	res, err := Run(plan, disk.NewSim(cfg.Disk, true), inputs, Options{StopAfter: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != nil {
		t.Fatal("run with generous budget must complete")
	}
	if res.Outputs["B"] == nil {
		t.Fatal("outputs missing")
	}
}

func TestNonCheckpointablePlanRejected(t *testing.T) {
	// Force a top-level write: select a placement putting B's write at
	// the outermost position — in the two-index program B's candidates
	// are all inside loops, so craft a plan manually by moving a write.
	cfg := machine.Small(4 << 10)
	plan := crashResumePlan(t, cfg)
	// Find any write IO and hoist it to top level (invalidating the plan
	// for checkpointing purposes).
	var theWrite *codegen.IO
	var find func(ns []codegen.Node)
	find = func(ns []codegen.Node) {
		for _, n := range ns {
			switch n := n.(type) {
			case *codegen.Loop:
				find(n.Body)
			case *codegen.IO:
				if !n.Read && theWrite == nil {
					theWrite = n
				}
			}
		}
	}
	find(plan.Body)
	if theWrite == nil {
		t.Fatal("no write found")
	}
	plan.Body = append(plan.Body, theWrite)
	if Checkpointable(plan) {
		t.Fatal("plan with top-level write must not be checkpointable")
	}
	be := disk.NewSim(cfg.Disk, true)
	defer be.Close()
	if _, err := Run(plan, be, nil, Options{StopAfter: 1}); err == nil {
		t.Fatal("StopAfter on non-checkpointable plan must error")
	}
	if _, err := Run(plan, be, nil, Options{Resume: &Checkpoint{}}); err == nil {
		t.Fatal("Resume on non-checkpointable plan must error")
	}
}

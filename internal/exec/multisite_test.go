package exec

import (
	"fmt"
	"testing"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/tensor"
)

// multiSiteProgram consumes the same input A in two different statements:
//
//	X[i,j] += A[i,j] * B1[i,j]
//	Y[i,j] += A[i,j] * B2[i,j]
//
// The placement model must give each occurrence its own read choice.
func multiSiteProgram(n int64) *loops.Program {
	p := loops.NewProgram("multi-site", map[string]int64{"i": n, "j": n})
	p.DeclareArray("A", loops.Input, "i", "j")
	p.DeclareArray("B1", loops.Input, "i", "j")
	p.DeclareArray("B2", loops.Input, "i", "j")
	p.DeclareArray("X", loops.Output, "i", "j")
	p.DeclareArray("Y", loops.Output, "i", "j")
	p.Body = []loops.Node{
		&loops.Init{Array: "X"},
		&loops.Init{Array: "Y"},
		loops.L([]loops.Node{loops.S("X[i,j]", "A[i,j]", "B1[i,j]")}, "i", "j"),
		loops.L([]loops.Node{loops.S("Y[i,j]", "A[i,j]", "B2[i,j]")}, "i", "j"),
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestMultiSiteInputReads(t *testing.T) {
	n := int64(12)
	prog := multiSiteProgram(n)
	cfg := machine.Small(4 << 10)
	p := buildProblem(t, prog, cfg)

	// The model must contain two independent choices for A.
	countA := 0
	for _, ch := range p.Model.Choices {
		if ch.Array.Name == "A" {
			countA++
		}
	}
	if countA != 2 {
		t.Fatalf("A has %d choices, want 2 (one per consumer site)", countA)
	}

	inputs := map[string]*tensor.Tensor{}
	for _, name := range []string{"A", "B1", "B2"} {
		tt := tensor.New(int(n), int(n))
		for i := range tt.Data() {
			tt.Data()[i] = float64(i%13) - 6
		}
		inputs[name] = tt
	}
	want, err := loops.Interpret(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	x := p.Encode(map[string]int64{"i": 5, "j": 7}, map[string]int{"A@0": 0, "A@1": 1})
	got, _ := runPlan(t, p, x, inputs)
	for _, name := range []string{"X", "Y"} {
		if d := tensor.MaxAbsDiff(got[name], want[name]); d > 1e-12 {
			t.Fatalf("%s differs by %g", name, d)
		}
	}
}

// faultyBackend wraps a backend and fails every I/O after a countdown.
type faultyBackend struct {
	disk.Backend
	remaining *int
}

type faultyArray struct {
	disk.Array
	remaining *int
}

func (f *faultyBackend) Create(name string, dims []int64) (disk.Array, error) {
	a, err := f.Backend.Create(name, dims)
	if err != nil {
		return nil, err
	}
	return &faultyArray{Array: a, remaining: f.remaining}, nil
}

func (f *faultyBackend) Open(name string) (disk.Array, error) {
	a, err := f.Backend.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyArray{Array: a, remaining: f.remaining}, nil
}

func (f *faultyArray) ReadSection(lo, shape []int64, buf []float64) error {
	if *f.remaining <= 0 {
		return fmt.Errorf("injected read failure")
	}
	*f.remaining--
	return f.Array.ReadSection(lo, shape, buf)
}

func (f *faultyArray) WriteSection(lo, shape []int64, buf []float64) error {
	if *f.remaining <= 0 {
		return fmt.Errorf("injected write failure")
	}
	*f.remaining--
	return f.Array.WriteSection(lo, shape, buf)
}

func TestIOErrorsPropagate(t *testing.T) {
	nmn, nij := int64(8), int64(8)
	prog := loops.TwoIndexFused(nmn, nij)
	cfg := machine.Small(2 << 10)
	p := buildProblem(t, prog, cfg)
	plan, err := codegen.Generate(p, p.Encode(map[string]int64{"i": 4, "j": 4, "m": 4, "n": 4}, nil))
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*tensor.Tensor{}
	for _, name := range []string{"A", "C1", "C2"} {
		inputs[name] = tensor.New(8, 8)
	}
	// Count the ops of a clean run, then inject a failure at every stage.
	clean := disk.NewSim(cfg.Disk, true)
	res, err := Run(plan, clean, inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	totalOps := int(res.Stats.ReadOps + res.Stats.WriteOps)
	if totalOps < 4 {
		t.Fatalf("too few ops (%d) for a meaningful fault sweep", totalOps)
	}
	for fail := 0; fail < totalOps; fail += totalOps/4 + 1 {
		budget := fail + 3 // staging writes are also charged against the fuse
		be := &faultyBackend{Backend: disk.NewSim(cfg.Disk, true), remaining: &budget}
		if _, err := Run(plan, be, inputs, Options{}); err == nil {
			t.Fatalf("failure injected after %d ops was swallowed", fail)
		}
	}
}

package exec

import (
	"math"
	"testing"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// closeRel compares modelled seconds up to floating-point association
// (sums are accumulated in different orders by the spans and the Stats).
func closeRel(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

// TestObsTelemetryMatchesStats is the observability acceptance test: for
// both the serial and the pipelined engine, the disk-track span total
// equals the backend's modelled disk.Stats.Time(), and the metrics
// registry's byte/op counters equal the backend's Stats. NoFetch keeps
// the output on disk so the counters cover exactly what Result.Stats
// covers (fetch reads happen after the Stats snapshot).
func TestObsTelemetryMatchesStats(t *testing.T) {
	nmn, nij := int64(6), int64(8)
	prog := loops.TwoIndexFused(nmn, nij)
	cfg := machine.Small(1 << 20)
	p := buildProblem(t, prog, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(nmn, nij), 42)
	plan, err := codegen.Generate(p, p.Encode(map[string]int64{"i": 4, "j": 4, "m": 3, "n": 3}, nil))
	if err != nil {
		t.Fatal(err)
	}

	for _, pipelined := range []bool{false, true} {
		name := "serial"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			be := disk.NewSim(cfg.Disk, true)
			defer be.Close()
			reg := obs.NewRegistry()
			tr := obs.NewTracer()
			if !disk.AttachMetrics(be, reg) {
				t.Fatal("Sim backend must accept a metrics registry")
			}
			res, err := Run(plan, be, inputs, Options{
				Pipeline: pipelined, NoFetch: true, Metrics: reg, Tracer: tr,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Disk-track span total == modelled Stats time.
			if got, want := tr.TrackSeconds(obs.TrackDisk), res.Stats.Time(); !closeRel(got, want) {
				t.Fatalf("disk-track span seconds %.12g != Stats.Time() %.12g", got, want)
			}

			// Metrics counters == backend Stats (computation only; staging
			// precedes ResetStats, which also zeroes the backend's counters).
			snap := reg.Snapshot()
			wantCounters := map[string]int64{
				disk.MetricReadOps:    res.Stats.ReadOps,
				disk.MetricReadBytes:  res.Stats.BytesRead,
				disk.MetricWriteOps:   res.Stats.WriteOps,
				disk.MetricWriteBytes: res.Stats.BytesWritten,
			}
			for name, want := range wantCounters {
				if got := snap.Counters[name]; got != want {
					t.Errorf("counter %s = %d, want %d (stats %v)", name, got, want, res.Stats)
				}
			}

			// Buffer watermark gauge mirrors Result.PeakBufferBytes.
			if got := snap.Gauges["exec.buffer.peak_bytes"].Value; got != float64(res.PeakBufferBytes) {
				t.Errorf("exec.buffer.peak_bytes = %g, want %d", got, res.PeakBufferBytes)
			}
			if got := snap.Gauges["exec.buffer.bytes"].Max; got != float64(res.PeakBufferBytes) {
				t.Errorf("exec.buffer.bytes high-water %g, want %d", got, res.PeakBufferBytes)
			}

			if !pipelined {
				return
			}

			// Pipeline counters mirror PipelineStats.
			ps := res.Pipeline
			if ps == nil {
				t.Fatal("pipelined run must report PipelineStats")
			}
			if got := snap.Counters["exec.pipeline.prefetch.shadow"]; got != ps.PrefetchedReads {
				t.Errorf("prefetch.shadow counter %d != PrefetchedReads %d", got, ps.PrefetchedReads)
			}
			if got := snap.Counters["exec.pipeline.writebehind"]; got != ps.WriteBehindWrites {
				t.Errorf("writebehind counter %d != WriteBehindWrites %d", got, ps.WriteBehindWrites)
			}
			if got := snap.Counters["exec.pipeline.barriers"]; got != ps.Barriers {
				t.Errorf("barriers counter %d != Barriers %d", got, ps.Barriers)
			}
			if h := snap.Histograms["exec.pipeline.barrier.stall_seconds"]; h.Count != ps.Barriers {
				t.Errorf("barrier stall histogram count %d != Barriers %d", h.Count, ps.Barriers)
			}

			// Every barrier leaves an instant event on the disk track.
			barriers := int64(0)
			for _, in := range tr.Instants() {
				if in.Name == "barrier" {
					if in.Track != obs.TrackDisk {
						t.Errorf("barrier instant on track %q", in.Track)
					}
					barriers++
				}
			}
			if barriers != ps.Barriers {
				t.Errorf("%d barrier instants, want %d", barriers, ps.Barriers)
			}

			// The Chrome export is valid JSON with both tracks present.
			raw, err := tr.ChromeTrace()
			if err != nil {
				t.Fatalf("ChromeTrace: %v", err)
			}
			if len(raw) == 0 {
				t.Fatal("empty Chrome trace")
			}
		})
	}
}

// TestPipelineObservedAllPlacements extends the pipelined engine's central
// bit-identity property with the full observability stack attached: for
// every placement combination the pipelined engine runs against a
// trace.Recorder-wrapped backend with a shared metrics registry and an
// engine tracer, and must still be bit-identical to the bare serial run
// with the same disk traffic. Run under -race this also exercises the
// recorder's and registry's concurrency safety against the asynchronous
// prefetch and write-behind goroutines.
func TestPipelineObservedAllPlacements(t *testing.T) {
	nmn, nij := int64(6), int64(8)
	prog := loops.TwoIndexFused(nmn, nij)
	cfg := machine.Small(1 << 20)
	p := buildProblem(t, prog, cfg)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(nmn, nij), 99)

	tileSets := []map[string]int64{
		{"i": 4, "j": 4, "m": 3, "n": 3},
		{"i": 3, "j": 5, "m": 4, "n": 5},
	}
	nCombos := 1
	for ci := 0; ci < p.NumChoices(); ci++ {
		nCombos *= p.NumCandidates(ci)
	}
	for _, tiles := range tileSets {
		for combo := 0; combo < nCombos; combo++ {
			sel := map[string]int{}
			rest := combo
			for ci := 0; ci < p.NumChoices(); ci++ {
				m := p.NumCandidates(ci)
				sel[p.Choices[ci].Name] = rest % m
				rest /= m
			}
			plan, err := codegen.Generate(p, p.Encode(tiles, sel))
			if err != nil {
				t.Fatal(err)
			}

			sbe := disk.NewSim(cfg.Disk, true)
			serial, err := Run(plan, sbe, inputs, Options{})
			if err != nil {
				t.Fatalf("tiles %v combo %d serial: %v", tiles, combo, err)
			}
			sbe.Close()

			rec := trace.NewWithDisk(disk.NewSim(cfg.Disk, true), cfg.Disk)
			reg := obs.NewRegistry()
			tr := obs.NewTracer()
			if !disk.AttachMetrics(rec, reg) {
				t.Fatal("recorder must forward metrics attachment to its inner backend")
			}
			piped, err := Run(plan, rec, inputs, Options{Pipeline: true, Metrics: reg, Tracer: tr})
			if err != nil {
				t.Fatalf("tiles %v combo %d pipelined: %v", tiles, combo, err)
			}

			bitIdentical(t, piped.Outputs["B"], serial.Outputs["B"], "observed pipelined output")
			sameIO(t, piped.Stats, serial.Stats, "observed all-placements")

			// Engine tracer covers exactly what Result.Stats covers.
			if got, want := tr.TrackSeconds(obs.TrackDisk), piped.Stats.Time(); !closeRel(got, want) {
				t.Fatalf("tiles %v combo %d: disk-track %.12g != Stats.Time() %.12g", tiles, combo, got, want)
			}

			// The recorder's op log is consistent: sequential, clock-ordered,
			// and at least as large as the computation's op count (it also
			// sees input staging and the output fetch).
			ops := rec.Ops()
			if int64(len(ops)) < piped.Stats.ReadOps+piped.Stats.WriteOps {
				t.Fatalf("tiles %v combo %d: recorder logged %d ops, stats report %d",
					tiles, combo, len(ops), piped.Stats.ReadOps+piped.Stats.WriteOps)
			}
			for i, op := range ops {
				if op.Seq != int64(i) {
					t.Fatalf("tiles %v combo %d: op %d has seq %d", tiles, combo, i, op.Seq)
				}
				if op.Completed < op.Issued {
					t.Fatalf("tiles %v combo %d: op %d completed %g before issued %g",
						tiles, combo, i, op.Completed, op.Issued)
				}
			}

			// The registry counters track the inner backend's live totals
			// (both include the staging-excluded computation plus the fetch).
			final := rec.Stats()
			snap := reg.Snapshot()
			if got := snap.Counters[disk.MetricReadBytes]; got != final.BytesRead {
				t.Fatalf("tiles %v combo %d: read bytes counter %d != backend %d", tiles, combo, got, final.BytesRead)
			}
			if got := snap.Counters[disk.MetricWriteBytes]; got != final.BytesWritten {
				t.Fatalf("tiles %v combo %d: write bytes counter %d != backend %d", tiles, combo, got, final.BytesWritten)
			}
			rec.Close()
		}
	}
}

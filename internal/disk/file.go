package disk

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/machine"
	"repro/internal/obs"
)

// draMagic identifies a legacy DRA1 array file: the magic followed by
// the rank and the dims, all little-endian int64, then the raw elements.
// DRA1 files carry no integrity metadata; the store adopts them in place
// by building a checksum index from their current contents.
var draMagic = [8]byte{'D', 'R', 'A', '1', 0, 0, 0, 0}

// draMagic2 identifies the native DRA2 format: the DRA1 header plus a
// trailing block-granularity field, with a per-block CRC32C index kept
// in an atomically-replaced ".sum" sidecar next to the data file.
var draMagic2 = [8]byte{'D', 'R', 'A', '2', 0, 0, 0, 0}

// sumMagic identifies a DRA2 checksum sidecar: magic, flags, block
// count, the CRC32C per block, and a trailing CRC32C of the sums region
// so index corruption is itself detectable.
var sumMagic = [8]byte{'D', 'R', 'S', '2', 0, 0, 0, 0}

// sumFlagDirty marks a sidecar written as a dirty-epoch marker: data
// writes were in flight after the last sync, so after an unclean
// shutdown the index may be stale relative to the data file. Open
// rebuilds such an index from the file contents (see fileArray.open).
const sumFlagDirty = 1

// Manifest format tags.
const (
	formatDRA1 = "dra1"
	formatDRA2 = "dra2"
)

// FileStore is a real file-backed array store: each array is one ".dra"
// file under the store's directory — a self-describing header (magic,
// rank, dims, checksum block size) followed by the elements as
// little-endian float64 in row-major order — plus a ".sum" checksum
// sidecar. Arrays persist across store instances: Open finds arrays
// created by earlier runs, and a MANIFEST.json catalogue lets Reopen
// validate what it finds. The store charges the same modelled I/O
// statistics as the simulator, so tests can compare backends, while
// also performing real reads and writes; every section read verifies
// the CRC32C of the blocks it covers before returning data.
type FileStore struct {
	dir        string
	sl         statsLocked
	blockElems int64
	arrays     map[string]*fileArray
	man        *manifest
	// pool serves asynchronous section operations: ReadAt/WriteAt are
	// safe to issue concurrently on one *os.File, so a small worker pool
	// overlaps real file I/O with the caller's compute.
	pool *ioPool
}

// fileAsyncWorkers is the FileStore pool size: enough to keep a prefetch
// and a write-behind in flight alongside the odd metadata operation.
const fileAsyncWorkers = 4

// NewFileStore creates a store rooted at dir (created if missing). When
// the directory holds a manifest from a previous instance, every listed
// array is validated against its file header before the store is
// returned, so a reopened store never silently trusts mismatched files.
// Listed arrays whose files were deleted out-of-band are pruned from
// the manifest — deleting a .dra file removes the array, it does not
// brick the store.
func NewFileStore(dir string, d machine.Disk) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if man == nil {
		man = &manifest{Arrays: map[string]manifestEntry{}}
	} else {
		pruned, err := validateManifest(dir, man)
		if err != nil {
			return nil, err
		}
		if pruned {
			if err := writeManifest(dir, man); err != nil {
				return nil, err
			}
		}
	}
	return &FileStore{
		dir:        dir,
		sl:         statsLocked{d: d},
		blockElems: DefaultBlockElems,
		arrays:     map[string]*fileArray{},
		man:        man,
		pool:       newIOPool(fileAsyncWorkers),
	}, nil
}

// SetBlockElems overrides the checksum granularity for subsequently
// created arrays (existing arrays keep the granularity recorded in
// their headers). Intended for tests that need multi-block sections on
// tiny arrays.
func (fs *FileStore) SetBlockElems(n int64) {
	if n > 0 {
		fs.blockElems = n
	}
}

// AsyncCapable reports native AsyncArray support.
func (fs *FileStore) AsyncCapable() bool { return true }

type fileArray struct {
	fs         *FileStore
	name       string
	dims       []int64
	n          int64 // total elements
	blockElems int64
	f          *os.File
	header     int64 // bytes before the first element
	legacy     bool  // adopted DRA1 file

	// mu orders section I/O against the checksum index: writers update
	// data and sums together under the write lock, readers verify and
	// read under the read lock, so a read never observes data and index
	// from different moments.
	mu    sync.RWMutex
	sums  []uint32 // CRC32C per block; authoritative while open
	dirty bool     // sums changed since the last persisted sidecar
}

func headerSize(rank int) int64  { return 8 + 8 + int64(rank)*8 }
func headerSize2(rank int) int64 { return headerSize(rank) + 8 }

// Create allocates a new zero-filled DRA2 array, failing if the array
// already exists in this store or on disk. The data file, its checksum
// sidecar, and the manifest entry are written in that order, so a crash
// mid-create leaves at worst an unlisted file the manifest ignores.
func (fs *FileStore) Create(name string, dims []int64) (Array, error) {
	if _, ok := fs.arrays[name]; ok {
		return nil, fmt.Errorf("disk: array %q already exists", name)
	}
	path := fs.path(name)
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("disk: array file %q already exists", path)
	}
	n := int64(1)
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("disk: non-positive dim %d for %q", d, name)
		}
		n *= d
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	rank := len(dims)
	hdr := make([]byte, headerSize2(rank))
	copy(hdr, draMagic2[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(rank))
	for i, d := range dims {
		binary.LittleEndian.PutUint64(hdr[16+i*8:], uint64(d))
	}
	binary.LittleEndian.PutUint64(hdr[16+rank*8:], uint64(fs.blockElems))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %w", err)
	}
	if err := f.Truncate(int64(len(hdr)) + n*8); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %w", err)
	}
	a := &fileArray{
		fs:         fs,
		name:       name,
		dims:       append([]int64(nil), dims...),
		n:          n,
		blockElems: fs.blockElems,
		f:          f,
		header:     int64(len(hdr)),
		sums:       freshSums(n, fs.blockElems),
	}
	if err := a.writeSums(0); err != nil {
		f.Close()
		return nil, err
	}
	fs.man.Arrays[name] = manifestEntry{
		Dims:       append([]int64(nil), dims...),
		BlockElems: fs.blockElems,
		Format:     formatDRA2,
	}
	if err := writeManifest(fs.dir, fs.man); err != nil {
		f.Close()
		return nil, err
	}
	fs.arrays[name] = a
	return a, nil
}

// freshSums builds the checksum index of an all-zero array.
func freshSums(n, blockElems int64) []uint32 {
	blocks := blockCount(n, blockElems)
	sums := make([]uint32, blocks)
	if blocks == 0 {
		return sums
	}
	full := zeroCRC(blockElems)
	for b := range sums {
		sums[b] = full
	}
	lo, hi := blockSpan(blocks-1, blockElems, n)
	sums[blocks-1] = zeroCRC(hi - lo)
	return sums
}

// parseHeader reads and validates a DRA header from f, returning the
// dims, the checksum block granularity (0 for legacy DRA1 files, which
// record none), and whether the file is legacy.
func parseHeader(f *os.File, path string) (dims []int64, blockElems int64, legacy bool, err error) {
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, 0, false, fmt.Errorf("%q is not a DRA file", path)
	}
	switch magic {
	case draMagic:
		legacy = true
	case draMagic2:
	default:
		return nil, 0, false, fmt.Errorf("%q is not a DRA file", path)
	}
	var rankBuf [8]byte
	if _, err := f.ReadAt(rankBuf[:], 8); err != nil {
		return nil, 0, false, fmt.Errorf("%q has a truncated header", path)
	}
	rank := int64(binary.LittleEndian.Uint64(rankBuf[:]))
	if rank < 0 || rank > 16 {
		return nil, 0, false, fmt.Errorf("%q has implausible rank %d", path, rank)
	}
	dimBuf := make([]byte, rank*8)
	if _, err := f.ReadAt(dimBuf, 16); err != nil {
		return nil, 0, false, fmt.Errorf("%q has a truncated header", path)
	}
	dims = make([]int64, rank)
	for i := range dims {
		dims[i] = int64(binary.LittleEndian.Uint64(dimBuf[i*8:]))
		if dims[i] <= 0 {
			return nil, 0, false, fmt.Errorf("%q has non-positive dim", path)
		}
	}
	if !legacy {
		var beBuf [8]byte
		if _, err := f.ReadAt(beBuf[:], 16+rank*8); err != nil {
			return nil, 0, false, fmt.Errorf("%q has a truncated header", path)
		}
		blockElems = int64(binary.LittleEndian.Uint64(beBuf[:]))
		if blockElems <= 0 {
			return nil, 0, false, fmt.Errorf("%q has non-positive checksum block size", path)
		}
	}
	return dims, blockElems, legacy, nil
}

// readHeader opens path read-only and parses its DRA header — the
// manifest validator's view of a file it does not want to keep open.
func readHeader(path string) (dims []int64, blockElems int64, legacy bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("%q does not exist", path)
	}
	defer f.Close()
	return parseHeader(f, path)
}

// Open returns an array created by this store, or re-opens a ".dra"
// file left by a previous store instance. Native DRA2 files load their
// checksum sidecar (rebuilding it from the data after an unclean
// shutdown); legacy DRA1 files are adopted in place with an index built
// from their current contents.
func (fs *FileStore) Open(name string) (Array, error) {
	if a, ok := fs.arrays[name]; ok {
		return a, nil
	}
	path := fs.path(name)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("disk: array %q does not exist", name)
	}
	dims, blockElems, legacy, err := parseHeader(f, path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %s", err)
	}
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	header := headerSize2(len(dims))
	if legacy {
		header = headerSize(len(dims))
		blockElems = fs.blockElems
		if ent, ok := fs.man.Arrays[name]; ok && ent.BlockElems > 0 {
			blockElems = ent.BlockElems
		}
	}
	a := &fileArray{
		fs:         fs,
		name:       name,
		dims:       dims,
		n:          n,
		blockElems: blockElems,
		f:          f,
		header:     header,
		legacy:     legacy,
	}
	if legacy {
		// No sidecar to trust: adopt the file by checksumming what is
		// there now. dirty makes the next Sync persist the new index
		// and list the array in the manifest.
		if err := a.rebuildLocked(); err != nil {
			f.Close()
			return nil, err
		}
		a.dirty = true
	} else if err := a.loadSums(); err != nil {
		f.Close()
		return nil, err
	}
	fs.arrays[name] = a
	return a, nil
}

func (fs *FileStore) path(name string) string {
	return filepath.Join(fs.dir, name+".dra")
}

func (fs *FileStore) sumPath(name string) string {
	return filepath.Join(fs.dir, name+".sum")
}

// Stats returns the accumulated (modelled) I/O statistics. Checksum
// verification performs real extra reads but charges nothing: the
// modelled cost must stay identical to the simulator's.
func (fs *FileStore) Stats() Stats { return fs.sl.snapshot() }

// Integrity returns the lifetime checksum-verification tallies (they
// survive ResetStats; see statsLocked).
func (fs *FileStore) Integrity() IntegrityCounts { return fs.sl.integSnapshot() }

// SetMetrics mirrors every subsequent I/O charge into reg (nil detaches).
func (fs *FileStore) SetMetrics(reg *obs.Registry) { fs.sl.setMetrics(reg) }

// ResetStats zeroes the counters.
func (fs *FileStore) ResetStats() { fs.sl.reset() }

// Sync makes the store durable and self-consistent: for every array
// with index changes since the last sync, the data file is fsynced
// first and the checksum sidecar is then atomically replaced (marked
// clean), and finally the manifest is rewritten. The ordering matters:
// a crash inside Sync leaves at worst a dirty-marked sidecar, never a
// clean index describing data that had not reached the disk. The
// execution engine calls this at unit barriers (exec.Options.SyncUnits)
// before advancing its checkpoint, so every durable checkpoint is
// backed by a consistent store.
func (fs *FileStore) Sync() error {
	names := make([]string, 0, len(fs.arrays))
	for name := range fs.arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := fs.arrays[name]
		a.mu.Lock()
		err := a.syncLocked()
		a.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return writeManifest(fs.dir, fs.man)
}

// syncLocked persists one array's durable state; the caller holds a.mu.
func (a *fileArray) syncLocked() error {
	if !a.dirty {
		return nil
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync %q: %w", a.name, err)
	}
	if err := a.writeSums(0); err != nil {
		return err
	}
	if a.legacy {
		// Adopting a legacy array: list it so Reopen validates it and
		// remembers its checksum granularity.
		a.fs.man.Arrays[a.name] = manifestEntry{
			Dims:       append([]int64(nil), a.dims...),
			BlockElems: a.blockElems,
			Format:     formatDRA1,
		}
	}
	a.dirty = false
	return nil
}

// Reopen closes the store (syncing its durable state) and constructs a
// fresh one over the same directory, validating the manifest — the hook
// exec.RunResilient uses to discard possibly-wedged file handles after
// a persistent fault. Integrity tallies carry over: they account the
// whole resilient run, not one set of file handles.
func (fs *FileStore) Reopen() (Backend, error) {
	integ := fs.sl.integSnapshot()
	if err := fs.Close(); err != nil {
		return nil, fmt.Errorf("disk: reopen: %w", err)
	}
	nfs, err := NewFileStore(fs.dir, fs.sl.d)
	if err != nil {
		return nil, err
	}
	nfs.sl.integ = integ
	return nfs, nil
}

// Close syncs and closes all array files and stops the worker pool.
// Pending asynchronous operations must have been awaited first. A store
// abandoned without Close models a crash: un-synced indices stay marked
// dirty on disk and are rebuilt on the next Open.
func (fs *FileStore) Close() error {
	fs.pool.close()
	first := fs.Sync()
	for _, a := range fs.arrays {
		if err := a.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	fs.arrays = map[string]*fileArray{}
	return first
}

// ArrayNames lists every array file in the store directory, sorted.
func (fs *FileStore) ArrayNames() []string {
	ents, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, ent := range ents {
		if name, ok := strings.CutSuffix(ent.Name(), ".dra"); ok && !ent.IsDir() {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// VerifyArray checks every block checksum of one array against the
// current file contents. It charges no modelled I/O and no verification
// tallies: a scrub is an out-of-band maintenance pass.
func (fs *FileStore) VerifyArray(name string) ([]ScrubDefect, int64, error) {
	aIface, err := fs.Open(name)
	if err != nil {
		return nil, 0, err
	}
	a := aIface.(*fileArray)
	a.mu.RLock()
	defer a.mu.RUnlock()
	var defects []ScrubDefect
	blocks := int64(len(a.sums))
	for b := int64(0); b < blocks; b++ {
		crc, err := a.blockCRCLocked(b)
		if err != nil {
			return nil, 0, err
		}
		if crc != a.sums[b] {
			defects = append(defects, ScrubDefect{Array: name, Block: b, Stored: a.sums[b], Computed: crc})
		}
	}
	return defects, blocks, nil
}

// RebuildChecksums recomputes the array's checksum index from its
// current contents, clearing any defects (the contents become the new
// truth).
func (fs *FileStore) RebuildChecksums(name string) error {
	aIface, err := fs.Open(name)
	if err != nil {
		return err
	}
	a := aIface.(*fileArray)
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.rebuildLocked(); err != nil {
		return err
	}
	a.dirty = true
	return nil
}

func (a *fileArray) Name() string  { return a.name }
func (a *fileArray) Dims() []int64 { return append([]int64(nil), a.dims...) }

// ReadAsync performs the read on the store's worker pool.
func (a *fileArray) ReadAsync(lo, shape []int64, buf []float64) Completion {
	return a.fs.pool.submit(func() error { return a.ReadSection(lo, shape, buf) })
}

// WriteAsync performs the write on the store's worker pool.
func (a *fileArray) WriteAsync(lo, shape []int64, buf []float64) Completion {
	return a.fs.pool.submit(func() error { return a.WriteSection(lo, shape, buf) })
}

// blockCRCLocked reads block b from the file and returns its CRC32C.
// The caller holds a.mu (read or write).
func (a *fileArray) blockCRCLocked(b int64) (uint32, error) {
	lo, hi := blockSpan(b, a.blockElems, a.n)
	raw := make([]byte, (hi-lo)*8)
	if _, err := a.f.ReadAt(raw, a.header+lo*8); err != nil {
		return 0, fmt.Errorf("disk: %w", err)
	}
	return crcBytes(raw), nil
}

// verifySectionLocked verifies every block the section covers before
// any data is handed out (reads) or mutated (writes), charging the
// verification tallies and returning the wrapped non-retryable
// integrity error on a mismatch. The verification reads are real I/O
// but charge no modelled statistics — the modelled cost must match the
// simulator's. The caller holds a.mu (read or write).
func (a *fileArray) verifySectionLocked(op string, lo, shape []int64) error {
	var (
		last    = int64(-1)
		checked int64
		ie      *IntegrityError
	)
	err := eachRun(a.dims, lo, shape, func(off, bufOff, run int64) error {
		return a.verifyRangeLocked(off, run, &last, &checked, &ie)
	})
	a.fs.sl.chargeVerify(a.name, checked)
	if err != nil {
		return wrapIO(op, a.name, lo, shape, transientOS(err), err)
	}
	if ie != nil {
		a.fs.sl.chargeDetect(a.name, ie.Blocks)
		// Rotten data re-reads identically: never retryable in place.
		return wrapIO(op, a.name, lo, shape, false, ie)
	}
	return nil
}

// verifyRangeLocked verifies the checksum of every block covering
// element range [off, off+run) that has ordinal > *last, advancing
// *last and tallying into *checked and *ie (first failure wins the
// error detail, Blocks counts all failures). The caller holds a.mu.
func (a *fileArray) verifyRangeLocked(off, run int64, last *int64, checked *int64, ie **IntegrityError) error {
	first := off / a.blockElems
	if first <= *last {
		first = *last + 1
	}
	lastB := (off + run - 1) / a.blockElems
	for b := first; b <= lastB; b++ {
		crc, err := a.blockCRCLocked(b)
		if err != nil {
			return err
		}
		*checked++
		if crc != a.sums[b] {
			if *ie == nil {
				*ie = &IntegrityError{Array: a.name, Block: b, Stored: a.sums[b], Computed: crc}
			}
			(*ie).Blocks++
		}
	}
	if lastB > *last {
		*last = lastB
	}
	return nil
}

func (a *fileArray) ReadSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("read", a.name, lo, shape, false, err)
	}
	if int64(len(buf)) != n {
		return NewIOError("read", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	a.fs.sl.chargeRead(a.name, n*8)
	a.mu.RLock()
	defer a.mu.RUnlock()
	if err := a.verifySectionLocked("read", lo, shape); err != nil {
		return err
	}
	err = eachRun(a.dims, lo, shape, func(off, bufOff, run int64) error {
		raw := make([]byte, run*8)
		if _, err := a.f.ReadAt(raw, a.header+off*8); err != nil {
			return err
		}
		for i := int64(0); i < run; i++ {
			buf[bufOff+i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		return nil
	})
	if err != nil {
		return wrapIO("read", a.name, lo, shape, transientOS(err), err)
	}
	return nil
}

func (a *fileArray) WriteSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("write", a.name, lo, shape, false, err)
	}
	if int64(len(buf)) != n {
		return NewIOError("write", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	a.fs.sl.chargeWrite(a.name, n*8)
	a.mu.Lock()
	defer a.mu.Unlock()
	// Read-modify-verify: a block only partially covered by this section
	// contributes its surviving bytes to the new checksum — verify them
	// first rather than silently blessing rot into the index.
	if err := a.verifySectionLocked("write", lo, shape); err != nil {
		return err
	}
	if err := a.markDirtyLocked(); err != nil {
		return wrapIO("write", a.name, lo, shape, false, err)
	}
	err = eachRun(a.dims, lo, shape, func(off, bufOff, run int64) error {
		raw := make([]byte, run*8)
		for i := int64(0); i < run; i++ {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(buf[bufOff+i]))
		}
		_, err := a.f.WriteAt(raw, a.header+off*8)
		return err
	})
	if err == nil {
		err = a.reindexLocked(lo, shape)
	}
	if err != nil {
		return wrapIO("write", a.name, lo, shape, transientOS(err), err)
	}
	return nil
}

// markDirtyLocked persists a dirty-epoch marker before the first data
// mutation after a sync: should the process die before the next Sync,
// Open sees the marker and rebuilds the index from the surviving data
// instead of trusting a stale one. The caller holds a.mu.
func (a *fileArray) markDirtyLocked() error {
	if a.dirty {
		return nil
	}
	if err := a.writeSums(sumFlagDirty); err != nil {
		return err
	}
	a.dirty = true
	return nil
}

// reindexLocked recomputes the checksum of every block covering the
// just-written section, reading each block back in full (blocks are not
// section-aligned, so neighbouring bytes contribute). The caller holds
// a.mu.
func (a *fileArray) reindexLocked(lo, shape []int64) error {
	last := int64(-1)
	return eachRun(a.dims, lo, shape, func(off, bufOff, run int64) error {
		first := off / a.blockElems
		if first <= last {
			first = last + 1
		}
		lastB := (off + run - 1) / a.blockElems
		for b := first; b <= lastB; b++ {
			crc, err := a.blockCRCLocked(b)
			if err != nil {
				return err
			}
			a.sums[b] = crc
		}
		if lastB > last {
			last = lastB
		}
		return nil
	})
}

// rebuildLocked recomputes the whole checksum index from the file
// contents. The caller holds a.mu (or has exclusive access).
func (a *fileArray) rebuildLocked() error {
	blocks := blockCount(a.n, a.blockElems)
	sums := make([]uint32, blocks)
	for b := int64(0); b < blocks; b++ {
		loE, hiE := blockSpan(b, a.blockElems, a.n)
		raw := make([]byte, (hiE-loE)*8)
		if _, err := a.f.ReadAt(raw, a.header+loE*8); err != nil {
			return fmt.Errorf("disk: checksum %q: %w", a.name, err)
		}
		sums[b] = crcBytes(raw)
	}
	a.sums = sums
	return nil
}

// writeSums atomically replaces the array's checksum sidecar.
func (a *fileArray) writeSums(flags uint64) error {
	if err := atomicWrite(a.fs.sumPath(a.name), encodeSums(a.sums, flags)); err != nil {
		return fmt.Errorf("disk: checksum sidecar %q: %w", a.name, err)
	}
	return nil
}

// loadSums loads the checksum sidecar of a DRA2 array. A missing
// sidecar or a dirty-epoch marker means the last shutdown was unclean:
// the index is rebuilt from the data file (post-checkpoint blocks may
// be torn, but the resume discipline rewrites them before reading). A
// present-but-corrupt sidecar is an error — the atomic replacement
// discipline never produces one.
func (a *fileArray) loadSums() error {
	raw, err := os.ReadFile(a.fs.sumPath(a.name))
	if os.IsNotExist(err) {
		if err := a.rebuildLocked(); err != nil {
			return err
		}
		a.dirty = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("disk: checksum sidecar %q: %w", a.name, err)
	}
	sums, dirty, derr := decodeSums(raw, blockCount(a.n, a.blockElems))
	if derr != nil {
		return fmt.Errorf("disk: checksum sidecar for %q is corrupt", a.name)
	}
	if dirty {
		if err := a.rebuildLocked(); err != nil {
			return err
		}
		a.dirty = true
		return nil
	}
	a.sums = sums
	return nil
}

// FlipBit flips one bit of the stored element at flat offset elem,
// beneath the checksum index — bit rot as the fault injector models it.
// The index is deliberately left untouched, so the next verified read
// covering the block detects the damage.
func (a *fileArray) FlipBit(elem int64, bit uint) error {
	if elem < 0 || elem >= a.n || bit > 63 {
		return fmt.Errorf("disk: flip-bit target out of range for %q", a.name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var raw [8]byte
	if _, err := a.f.ReadAt(raw[:], a.header+elem*8); err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	v := binary.LittleEndian.Uint64(raw[:])
	binary.LittleEndian.PutUint64(raw[:], v^(1<<bit))
	if _, err := a.f.WriteAt(raw[:], a.header+elem*8); err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	return nil
}

// WriteSectionSilent performs a write that lies about its outcome: the
// operation is charged and the checksum index advances as if the write
// fully succeeded, but the medium keeps the previous bytes — all of
// them (SilentLost) or everything past the leading half of the rows
// (SilentTorn). The next verified read over the damage detects the
// mismatch.
func (a *fileArray) WriteSectionSilent(lo, shape []int64, buf []float64, mode SilentMode) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("write", a.name, lo, shape, false, err)
	}
	if int64(len(buf)) != n {
		return NewIOError("write", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	a.fs.sl.chargeWrite(a.name, n*8)
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.markDirtyLocked(); err != nil {
		return wrapIO("write", a.name, lo, shape, false, err)
	}
	keep := int64(0) // packed elements that genuinely persist
	if mode == SilentTorn {
		keep = silentPrefixElems(shape)
	}
	type revert struct {
		off int64
		old []byte
	}
	var reverts []revert
	err = eachRun(a.dims, lo, shape, func(off, bufOff, run int64) error {
		// Snapshot the bytes the medium will secretly keep.
		if bufOff+run > keep {
			rs := keep - bufOff // first reverted packed element of this run
			if rs < 0 {
				rs = 0
			}
			old := make([]byte, (run-rs)*8)
			if _, err := a.f.ReadAt(old, a.header+(off+rs)*8); err != nil {
				return err
			}
			reverts = append(reverts, revert{off: off + rs, old: old})
		}
		raw := make([]byte, run*8)
		for i := int64(0); i < run; i++ {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(buf[bufOff+i]))
		}
		_, err := a.f.WriteAt(raw, a.header+off*8)
		return err
	})
	if err == nil {
		// Index the write as if it fully succeeded...
		err = a.reindexLocked(lo, shape)
	}
	if err == nil {
		// ...then put the old bytes back underneath it.
		for _, r := range reverts {
			if _, werr := a.f.WriteAt(r.old, a.header+r.off*8); werr != nil {
				err = werr
				break
			}
		}
	}
	if err != nil {
		return wrapIO("write", a.name, lo, shape, transientOS(err), err)
	}
	return nil
}

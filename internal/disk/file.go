package disk

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/machine"
	"repro/internal/obs"
)

// draMagic identifies a disk-resident array file; the header is the magic
// followed by the rank and the dims, all little-endian int64.
var draMagic = [8]byte{'D', 'R', 'A', '1', 0, 0, 0, 0}

// FileStore is a real file-backed array store: each array is one ".dra"
// file under the store's directory — a self-describing header (magic,
// rank, dims) followed by the elements as little-endian float64 in
// row-major order. Arrays persist across store instances: Open finds
// arrays created by earlier runs. The store charges the same modelled I/O
// statistics as the simulator, so tests can compare backends, while also
// performing real reads and writes.
type FileStore struct {
	dir    string
	sl     statsLocked
	arrays map[string]*fileArray
	// pool serves asynchronous section operations: ReadAt/WriteAt are
	// safe to issue concurrently on one *os.File, so a small worker pool
	// overlaps real file I/O with the caller's compute.
	pool *ioPool
}

// fileAsyncWorkers is the FileStore pool size: enough to keep a prefetch
// and a write-behind in flight alongside the odd metadata operation.
const fileAsyncWorkers = 4

// NewFileStore creates a store rooted at dir (created if missing).
func NewFileStore(dir string, d machine.Disk) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	return &FileStore{
		dir:    dir,
		sl:     statsLocked{d: d},
		arrays: map[string]*fileArray{},
		pool:   newIOPool(fileAsyncWorkers),
	}, nil
}

// AsyncCapable reports native AsyncArray support.
func (fs *FileStore) AsyncCapable() bool { return true }

type fileArray struct {
	fs     *FileStore
	name   string
	dims   []int64
	f      *os.File
	header int64 // bytes before the first element
}

func headerSize(rank int) int64 { return 8 + 8 + int64(rank)*8 }

// Create allocates a new zero-filled array file, failing if the array
// already exists in this store or on disk.
func (fs *FileStore) Create(name string, dims []int64) (Array, error) {
	if _, ok := fs.arrays[name]; ok {
		return nil, fmt.Errorf("disk: array %q already exists", name)
	}
	path := fs.path(name)
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("disk: array file %q already exists", path)
	}
	n := int64(1)
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("disk: non-positive dim %d for %q", d, name)
		}
		n *= d
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	hdr := make([]byte, headerSize(len(dims)))
	copy(hdr, draMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(dims)))
	for i, d := range dims {
		binary.LittleEndian.PutUint64(hdr[16+i*8:], uint64(d))
	}
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %w", err)
	}
	if err := f.Truncate(int64(len(hdr)) + n*8); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %w", err)
	}
	a := &fileArray{
		fs:     fs,
		name:   name,
		dims:   append([]int64(nil), dims...),
		f:      f,
		header: int64(len(hdr)),
	}
	fs.arrays[name] = a
	return a, nil
}

// Open returns an array created by this store, or re-opens a ".dra" file
// left by a previous store instance.
func (fs *FileStore) Open(name string) (Array, error) {
	if a, ok := fs.arrays[name]; ok {
		return a, nil
	}
	f, err := os.OpenFile(fs.path(name), os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("disk: array %q does not exist", name)
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil || magic != draMagic {
		f.Close()
		return nil, fmt.Errorf("disk: %q is not a DRA file", fs.path(name))
	}
	var rankBuf [8]byte
	if _, err := f.ReadAt(rankBuf[:], 8); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %w", err)
	}
	rank := int64(binary.LittleEndian.Uint64(rankBuf[:]))
	if rank < 0 || rank > 16 {
		f.Close()
		return nil, fmt.Errorf("disk: %q has implausible rank %d", name, rank)
	}
	dimBuf := make([]byte, rank*8)
	if _, err := f.ReadAt(dimBuf, 16); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %w", err)
	}
	dims := make([]int64, rank)
	for i := range dims {
		dims[i] = int64(binary.LittleEndian.Uint64(dimBuf[i*8:]))
		if dims[i] <= 0 {
			f.Close()
			return nil, fmt.Errorf("disk: %q has non-positive dim", name)
		}
	}
	a := &fileArray{
		fs:     fs,
		name:   name,
		dims:   dims,
		f:      f,
		header: headerSize(int(rank)),
	}
	fs.arrays[name] = a
	return a, nil
}

func (fs *FileStore) path(name string) string {
	return filepath.Join(fs.dir, name+".dra")
}

// Stats returns the accumulated (modelled) I/O statistics.
func (fs *FileStore) Stats() Stats { return fs.sl.snapshot() }

// SetMetrics mirrors every subsequent I/O charge into reg (nil detaches).
func (fs *FileStore) SetMetrics(reg *obs.Registry) { fs.sl.setMetrics(reg) }

// ResetStats zeroes the counters.
func (fs *FileStore) ResetStats() { fs.sl.reset() }

// Close closes all array files and stops the worker pool. Pending
// asynchronous operations must have been awaited first.
func (fs *FileStore) Close() error {
	fs.pool.close()
	var first error
	for _, a := range fs.arrays {
		if err := a.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	fs.arrays = map[string]*fileArray{}
	return first
}

func (a *fileArray) Name() string  { return a.name }
func (a *fileArray) Dims() []int64 { return append([]int64(nil), a.dims...) }

// ReadAsync performs the read on the store's worker pool.
func (a *fileArray) ReadAsync(lo, shape []int64, buf []float64) Completion {
	return a.fs.pool.submit(func() error { return a.ReadSection(lo, shape, buf) })
}

// WriteAsync performs the write on the store's worker pool.
func (a *fileArray) WriteAsync(lo, shape []int64, buf []float64) Completion {
	return a.fs.pool.submit(func() error { return a.WriteSection(lo, shape, buf) })
}

func (a *fileArray) ReadSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("read", a.name, lo, shape, false, err)
	}
	if int64(len(buf)) != n {
		return NewIOError("read", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	a.fs.sl.chargeRead(a.name, n*8)
	err = a.eachRun(lo, shape, func(fileOff, bufOff, run int64) error {
		raw := make([]byte, run*8)
		if _, err := a.f.ReadAt(raw, a.header+fileOff*8); err != nil {
			return err
		}
		for i := int64(0); i < run; i++ {
			buf[bufOff+i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		return nil
	})
	if err != nil {
		return wrapIO("read", a.name, lo, shape, transientOS(err), err)
	}
	return nil
}

func (a *fileArray) WriteSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("write", a.name, lo, shape, false, err)
	}
	if int64(len(buf)) != n {
		return NewIOError("write", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	a.fs.sl.chargeWrite(a.name, n*8)
	err = a.eachRun(lo, shape, func(fileOff, bufOff, run int64) error {
		raw := make([]byte, run*8)
		for i := int64(0); i < run; i++ {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(buf[bufOff+i]))
		}
		_, err := a.f.WriteAt(raw, a.header+fileOff*8)
		return err
	})
	if err != nil {
		return wrapIO("write", a.name, lo, shape, transientOS(err), err)
	}
	return nil
}

// eachRun visits the contiguous runs (along the last dimension) of a
// section, calling fn with the file element offset, packed buffer offset,
// and run length.
func (a *fileArray) eachRun(lo, shape []int64, fn func(fileOff, bufOff, run int64) error) error {
	rank := len(a.dims)
	if rank == 0 {
		return fn(0, 0, 1)
	}
	strides := make([]int64, rank)
	s := int64(1)
	for i := rank - 1; i >= 0; i-- {
		strides[i] = s
		s *= a.dims[i]
	}
	run := shape[rank-1]
	idx := make([]int64, rank-1)
	bufOff := int64(0)
	for {
		off := lo[rank-1] * strides[rank-1]
		for i := 0; i < rank-1; i++ {
			off += (lo[i] + idx[i]) * strides[i]
		}
		if err := fn(off, bufOff, run); err != nil {
			return err
		}
		bufOff += run
		d := rank - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			return nil
		}
	}
}

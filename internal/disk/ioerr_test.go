package disk

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"syscall"
	"testing"
)

func TestIOErrorCopiesSection(t *testing.T) {
	lo := []int64{1, 2}
	shape := []int64{3, 4}
	e := NewIOError("read", "A", lo, shape, true, errors.New("boom"))
	lo[0], shape[0] = 99, 99
	if e.Lo[0] != 1 || e.Shape[0] != 3 {
		t.Fatalf("IOError retained caller slices: lo=%v shape=%v", e.Lo, e.Shape)
	}
}

func TestIOErrorClassificationAndUnwrap(t *testing.T) {
	cause := errors.New("underlying")
	e := NewIOError("write", "B", []int64{0}, []int64{8}, true, cause)
	if !e.Transient() || !IsTransient(e) {
		t.Fatal("transient error not classified as transient")
	}
	if !errors.Is(e, cause) {
		t.Fatal("errors.Is does not reach the cause")
	}
	wrapped := fmt.Errorf("exec: write %q: %w", "B", e)
	var ioe *IOError
	if !errors.As(wrapped, &ioe) || ioe.Array != "B" {
		t.Fatalf("errors.As failed through wrapping: %v", wrapped)
	}
	if !IsTransient(wrapped) {
		t.Fatal("IsTransient failed through wrapping")
	}
	p := NewIOError("read", "C", nil, nil, false, nil)
	if p.Transient() || IsTransient(p) {
		t.Fatal("persistent error classified as transient")
	}
	if IsTransient(nil) || IsTransient(errors.New("plain")) {
		t.Fatal("IsTransient true outside the taxonomy")
	}
}

func TestIOErrorMessage(t *testing.T) {
	e := NewIOError("read", "A", []int64{0, 8}, []int64{4, 4}, true,
		fmt.Errorf("disk: inner detail"))
	msg := e.Error()
	for _, want := range []string{"read", `"A"`, "lo=[0 8]", "shape=[4 4]", "transient", "inner detail"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
	if strings.Count(msg, "disk: ") != 1 {
		t.Fatalf("message %q should carry exactly one disk: prefix", msg)
	}
}

func TestBackendsReturnTypedSectionErrors(t *testing.T) {
	sim := NewSim(testDisk(), true)
	if _, err := sim.Create("A", []int64{4, 4}); err != nil {
		t.Fatal(err)
	}
	a, err := sim.Open("A")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileStore(t.TempDir(), testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Create("A", []int64{4, 4}); err != nil {
		t.Fatal(err)
	}
	fa, err := fs.Open("A")
	if err != nil {
		t.Fatal(err)
	}
	for _, arr := range []Array{a, fa} {
		var ioe *IOError
		// Out-of-bounds section.
		err := arr.ReadSection([]int64{3, 3}, []int64{2, 2}, make([]float64, 4))
		if !errors.As(err, &ioe) {
			t.Fatalf("out-of-bounds read not an *IOError: %v", err)
		}
		if ioe.Op != "read" || ioe.Array != "A" || ioe.Transient() {
			t.Fatalf("bad attribution: %+v", ioe)
		}
		// Mismatched buffer.
		err = arr.WriteSection([]int64{0, 0}, []int64{2, 2}, make([]float64, 3))
		if !errors.As(err, &ioe) || ioe.Op != "write" {
			t.Fatalf("short-buffer write not a typed write error: %v", err)
		}
	}
}

func TestTransientOSClassifier(t *testing.T) {
	if !transientOS(fmt.Errorf("op: %w", syscall.EINTR)) {
		t.Fatal("EINTR should be transient")
	}
	if transientOS(syscall.ENOSPC) || transientOS(errors.New("x")) {
		t.Fatal("non-retryable OS errors classified transient")
	}
}

func TestRetryPolicyDelays(t *testing.T) {
	var p *RetryPolicy
	if p.Attempts() != 1 || p.ForArray("A") != nil || p.Delay(0, 1) != 0 {
		t.Fatal("nil policy should mean a single attempt with no delay")
	}
	p = &RetryPolicy{MaxAttempts: 5, BaseDelay: 1e-3, MaxDelay: 3e-3, Seed: 7}
	for i := 0; i < 8; i++ {
		d := p.Delay(i, 42)
		if d <= 0 || d > p.MaxDelay+1e-12 {
			t.Fatalf("attempt %d delay %g outside (0,%g]", i, d, p.MaxDelay)
		}
		if d != p.Delay(i, 42) {
			t.Fatal("delay not deterministic")
		}
	}
	if math.Abs(p.Delay(1, 1)-2e-3) > 1e-12 {
		t.Fatalf("no-jitter doubling broken: %g", p.Delay(1, 1))
	}
	p.Jitter = 0.5
	d0, d1 := p.Delay(2, 1), p.Delay(2, 2)
	if d0 == d1 {
		t.Fatal("jitter should vary with the operation key")
	}
	for _, d := range []float64{d0, d1} {
		if d < 3e-3*0.5-1e-12 || d > 3e-3+1e-12 {
			t.Fatalf("jittered delay %g outside [d/2, d]", d)
		}
	}
}

func TestRetryPolicyPerArray(t *testing.T) {
	over := &RetryPolicy{MaxAttempts: 9}
	p := &RetryPolicy{MaxAttempts: 2, PerArray: map[string]*RetryPolicy{"B": over}}
	if p.ForArray("A").Attempts() != 2 {
		t.Fatal("default policy not used for unlisted array")
	}
	if p.ForArray("B").Attempts() != 9 {
		t.Fatal("per-array override ignored")
	}
}

package disk

// This file is the backend-independent half of the data-integrity layer:
// the typed IntegrityError that joins the IOError taxonomy as
// non-retryable, the CRC32C block-checksum helpers both backends share,
// the capability interfaces the rest of the stack probes (Syncer,
// Reopener, IntegrityStore, and the silent-corruption hooks the fault
// injector uses), and the Scrub sweep. The file-backed DRA2 format lives
// in file.go; the simulator's shadow index in sim.go.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strings"

	"repro/internal/obs"
)

// castagnoli is the CRC32C polynomial table; CRC32C is the standard
// storage-integrity checksum (iSCSI, ext4, Btrfs) and is hardware
// accelerated by the stdlib on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DefaultBlockElems is the checksum granularity: elements per checksummed
// block (4096 elements = 32 KiB of float64). It deliberately sits at or
// below the NLP model's minimum transfer size (machine.Disk.MinBlock), so
// a verified section read never spans fewer than one whole block of the
// sections the solver emits; tests shrink it to exercise multi-block
// sections on tiny arrays.
const DefaultBlockElems = 4096

// IntegrityError reports a checksum-verification failure: stored data
// that no longer matches the checksum recorded when it was written. It
// is always wrapped in a non-retryable *IOError by the backends —
// re-reading a rotten block returns the same bytes, so the retry layer
// must not absorb it; recovery has to re-create the data instead
// (exec.RunResilient's heal path).
type IntegrityError struct {
	Array string // array name
	Block int64  // ordinal of the first failing checksum block
	// Blocks is the number of failing blocks in the verified range
	// (consecutive ordinals starting at Block need not all fail; this is
	// a count, with Block the first).
	Blocks int64
	// Stored and Computed are the recorded and recomputed CRC32C of the
	// first failing block.
	Stored, Computed uint32
}

func (e *IntegrityError) Error() string {
	if e.Blocks > 1 {
		return fmt.Sprintf("disk: integrity: array %q: %d block(s) failed checksum verification starting at block %d (stored %08x, computed %08x)",
			e.Array, e.Blocks, e.Block, e.Stored, e.Computed)
	}
	return fmt.Sprintf("disk: integrity: array %q block %d failed checksum verification (stored %08x, computed %08x)",
		e.Array, e.Block, e.Stored, e.Computed)
}

// IsIntegrity reports whether err wraps an *IntegrityError — a verified
// read failure that retrying in place cannot fix.
func IsIntegrity(err error) bool {
	var ie *IntegrityError
	return errors.As(err, &ie)
}

// Syncer is implemented by backends with durable state. Sync flushes
// everything a crash would otherwise lose: dirty checksum indices
// (written atomically via write-temp + rename), the data files (fsync),
// and the store manifest. The execution engine calls it at unit barriers
// under exec.Options.SyncUnits, which bounds post-crash loss to the
// current work unit.
type Syncer interface {
	Sync() error
}

// Reopener is implemented by backends that can rebuild themselves over
// their persistent state — the hook exec.RunResilient probes when
// RecoveryOptions.Reopen is unset. FileStore reopens its directory
// (validating the manifest); fault.Injector forwards to its inner
// backend while keeping the fault schedule running.
type Reopener interface {
	Reopen() (Backend, error)
}

// InnerBackend is implemented by wrapping backends (fault.Injector,
// trace.Recorder) to expose the backend they decorate, so integrity
// probes reach the real store through any wrapper chain.
type InnerBackend interface {
	Inner() Backend
}

// SyncBackend flushes the first Syncer found along be's wrapper chain.
// Backends without durable state are a successful no-op.
func SyncBackend(be Backend) error {
	for be != nil {
		if s, ok := be.(Syncer); ok {
			return s.Sync()
		}
		ib, ok := be.(InnerBackend)
		if !ok {
			return nil
		}
		be = ib.Inner()
	}
	return nil
}

// SilentMode selects how a write lies about its outcome.
type SilentMode int

const (
	// SilentLost acknowledges the write and advances the checksum index,
	// but the medium keeps the previous bytes — a lost write.
	SilentLost SilentMode = iota
	// SilentTorn persists only the leading half of the section's rows
	// while acknowledging (and indexing) the whole write — a torn write
	// that returned success.
	SilentTorn
)

// SilentWriter is implemented by backend arrays that can model silent
// write corruption beneath their own checksum layer, so the fault
// injector's lies are detectable by the very backend that told them.
// Both backends implement it identically: the write is performed in
// full (stats charged, checksums advanced), then the affected data is
// reverted underneath the index.
type SilentWriter interface {
	WriteSectionSilent(lo, shape []int64, buf []float64, mode SilentMode) error
}

// BitFlipper is implemented by backend arrays that can flip one bit of
// a stored element beneath the checksum layer — bit rot. elem is the
// row-major flat element offset; bit selects the bit of its 64-bit
// little-endian encoding.
type BitFlipper interface {
	FlipBit(elem int64, bit uint) error
}

// silentPrefixElems returns how many leading packed elements of a
// section survive a SilentTorn write: half the rows along the leading
// dimension, matching the injector's erroring torn-write semantics.
func silentPrefixElems(shape []int64) int64 {
	if len(shape) == 0 || shape[0] < 2 {
		return 0
	}
	n := shape[0] / 2
	for _, d := range shape[1:] {
		n *= d
	}
	return n
}

// IntegrityCounts tallies a backend's checksum-verification activity.
type IntegrityCounts struct {
	// VerifiedBlocks counts block checksums verified on section reads.
	VerifiedBlocks int64
	// Detected counts blocks that failed verification.
	Detected int64
}

// Metric names for the integrity layer. Per-array variants append
// "/<array name>".
const (
	MetricIntegrityBlocks   = "disk.integrity.blocks"
	MetricIntegrityDetected = "disk.integrity.detected"
	MetricScrubBlocks       = "disk.scrub.blocks"
	MetricScrubDefects      = "disk.scrub.defects"
	MetricScrubRepaired     = "disk.scrub.repaired"
	// MetricScrubDefectsByArray is a labeled counter family breaking
	// the defect tally down per array (label "array").
	MetricScrubDefectsByArray = "disk.scrub.defects.by_array"
)

// ScrubDefect is one block whose stored checksum disagrees with its
// current contents.
type ScrubDefect struct {
	Array            string `json:"array"`
	Block            int64  `json:"block"`
	Stored, Computed uint32 `json:"-"`
}

// ScrubReport is the outcome of one Scrub sweep.
type ScrubReport struct {
	// Arrays and Blocks count what the sweep covered.
	Arrays int   `json:"arrays"`
	Blocks int64 `json:"blocks"`
	// Defects lists every block that failed verification.
	Defects []ScrubDefect `json:"defects,omitempty"`
	// Repaired counts defective blocks whose checksums were rebuilt to
	// accept the current contents (ScrubOptions.Repair).
	Repaired int64 `json:"repaired,omitempty"`
	// HealedFromReplica counts replica copies rebuilt from a healthy
	// peer by a ReplicaHealer backend — true repairs that restore the
	// original data, as opposed to the Repaired blessing.
	HealedFromReplica int64 `json:"healed_from_replica,omitempty"`
}

// OK reports a defect-free sweep.
func (r *ScrubReport) OK() bool { return len(r.Defects) == 0 }

func (r *ScrubReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scrub: %d array(s), %d block(s), %d defect(s)", r.Arrays, r.Blocks, len(r.Defects))
	if r.HealedFromReplica > 0 {
		fmt.Fprintf(&b, ", %d healed from replica", r.HealedFromReplica)
	}
	if r.Repaired > 0 {
		fmt.Fprintf(&b, ", %d repaired", r.Repaired)
	}
	return b.String()
}

// ScrubOptions tune a Scrub sweep.
type ScrubOptions struct {
	// Repair rebuilds the checksum index of every defective array to
	// accept its current contents — accepting the corruption as the new
	// truth. Use after recovery has re-created the data, or when the
	// original data is gone and a clean baseline is needed.
	Repair bool
	// Metrics, if non-nil, receives scrub progress counters
	// (disk.scrub.blocks / .defects / .repaired) plus the per-array
	// defect breakdown (labeled family disk.scrub.defects.by_array).
	Metrics *obs.Registry
	// Log, if non-nil, receives one scrub.defect event per rotten block
	// and a scrub.done summary (system "disk").
	Log *obs.Log
}

// IntegrityStore is the per-backend scrub surface: both FileStore and
// Sim implement it. Scrub reaches it through wrapper chains via
// InnerBackend.
type IntegrityStore interface {
	// ArrayNames lists the store's arrays in deterministic order.
	ArrayNames() []string
	// VerifyArray checks every block checksum of one array against its
	// current contents, returning the defects and the number of blocks
	// scanned. It does not charge modelled I/O statistics: a scrub is an
	// out-of-band maintenance pass, not part of the plan's I/O.
	VerifyArray(name string) (defects []ScrubDefect, blocks int64, err error)
	// RebuildChecksums recomputes the array's checksum index from its
	// current contents, clearing any defects.
	RebuildChecksums(name string) error
}

// Scrub sweeps every array of the first IntegrityStore along be's
// wrapper chain, verifying all block checksums against the stored data.
// With opt.Repair the defective indices are rebuilt (and, when the store
// is a Syncer, persisted).
func Scrub(be Backend, opt ScrubOptions) (*ScrubReport, error) {
	st := findIntegrityStore(be)
	if st == nil {
		return nil, fmt.Errorf("disk: backend does not maintain integrity metadata; nothing to scrub")
	}
	rep := &ScrubReport{}
	for _, name := range st.ArrayNames() {
		defects, blocks, err := st.VerifyArray(name)
		if err != nil {
			return nil, fmt.Errorf("disk: scrub %q: %w", name, err)
		}
		rep.Arrays++
		rep.Blocks += blocks
		rep.Defects = append(rep.Defects, defects...)
		for _, d := range defects {
			opt.Log.Warn("disk", "scrub.defect",
				obs.F("array", d.Array),
				obs.F("block", d.Block),
				obs.F("stored", fmt.Sprintf("%08x", d.Stored)),
				obs.F("computed", fmt.Sprintf("%08x", d.Computed)))
		}
		if opt.Metrics != nil && len(defects) > 0 {
			opt.Metrics.CounterVec(MetricScrubDefectsByArray, "array").
				With(name).Add(int64(len(defects)))
		}
		if opt.Repair && len(defects) > 0 {
			// Repair-before-recompute ordering: a replicated backend
			// first restores defective copies from a healthy peer; only
			// blocks no replica can restore fall through to the blessing
			// below (and, at the execution layer, to recompute).
			healed := false
			if h := AsReplicaHealer(be); h != nil {
				copied, unhealedBlocks, err := h.HealArray(name)
				if err != nil {
					return nil, fmt.Errorf("disk: scrub heal %q: %w", name, err)
				}
				rep.HealedFromReplica += copied
				healed = unhealedBlocks == 0
			}
			if !healed {
				if err := st.RebuildChecksums(name); err != nil {
					return nil, fmt.Errorf("disk: scrub repair %q: %w", name, err)
				}
			}
			rep.Repaired += int64(len(defects))
		}
	}
	if opt.Repair && rep.Repaired > 0 {
		if err := SyncBackend(be); err != nil {
			return nil, fmt.Errorf("disk: scrub repair sync: %w", err)
		}
	}
	if opt.Metrics != nil {
		opt.Metrics.Counter(MetricScrubBlocks).Add(rep.Blocks)
		opt.Metrics.Counter(MetricScrubDefects).Add(int64(len(rep.Defects)))
		opt.Metrics.Counter(MetricScrubRepaired).Add(rep.Repaired)
	}
	opt.Log.Info("disk", "scrub.done",
		obs.F("arrays", rep.Arrays),
		obs.F("blocks", rep.Blocks),
		obs.F("defects", len(rep.Defects)),
		obs.F("repaired", rep.Repaired))
	return rep, nil
}

// AsIntegrityStore returns the first IntegrityStore along be's wrapper
// chain, or nil when nothing on the chain keeps integrity metadata — the
// probe exec's heal path and the scrub CLI share.
func AsIntegrityStore(be Backend) IntegrityStore { return findIntegrityStore(be) }

// ReplicaHealer is implemented by backends that keep redundant copies of
// their arrays (ring.Store) and can rebuild a defective copy from a
// healthy peer. It is the repair-before-recompute hook: Scrub and the
// execution engine's integrity heal path both try it before blessing
// corruption or recomputing data from its producer.
type ReplicaHealer interface {
	// HealArray restores every defective replica copy of one array from
	// a healthy peer. copied counts copies rebuilt; unhealed counts
	// blocks left defective because no healthy replica existed.
	HealArray(name string) (copied, unhealed int64, err error)
}

// AsReplicaHealer returns the first ReplicaHealer along be's wrapper
// chain, or nil when the backend keeps no redundant copies.
func AsReplicaHealer(be Backend) ReplicaHealer {
	for be != nil {
		if h, ok := be.(ReplicaHealer); ok {
			return h
		}
		ib, ok := be.(InnerBackend)
		if !ok {
			return nil
		}
		be = ib.Inner()
	}
	return nil
}

// findIntegrityStore unwraps be until an IntegrityStore is found.
func findIntegrityStore(be Backend) IntegrityStore {
	for be != nil {
		if st, ok := be.(IntegrityStore); ok {
			return st
		}
		ib, ok := be.(InnerBackend)
		if !ok {
			return nil
		}
		be = ib.Inner()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared checksum helpers.

// blockCount returns how many checksum blocks cover n elements.
func blockCount(n, blockElems int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + blockElems - 1) / blockElems
}

// blockSpan returns the element range [lo, hi) of block b of an array
// with n total elements.
func blockSpan(b, blockElems, n int64) (int64, int64) {
	lo := b * blockElems
	hi := lo + blockElems
	if hi > n {
		hi = n
	}
	return lo, hi
}

// crcFloats computes the CRC32C of the little-endian float64 encoding of
// vals — the same bytes FileStore hashes from its data file, so both
// backends agree on every checksum.
func crcFloats(vals []float64) uint32 {
	var scratch [4096]byte
	crc := uint32(0)
	for len(vals) > 0 {
		n := len(vals)
		if n > len(scratch)/8 {
			n = len(scratch) / 8
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(scratch[i*8:], math.Float64bits(vals[i]))
		}
		crc = crc32.Update(crc, castagnoli, scratch[:n*8])
		vals = vals[n:]
	}
	return crc
}

// crcBytes computes the CRC32C of raw bytes.
func crcBytes(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// zeroCRC returns the CRC32C of n zero-valued float64s (fresh blocks of
// a newly created array).
func zeroCRC(n int64) uint32 {
	var zeros [4096]byte
	crc := uint32(0)
	for rem := n * 8; rem > 0; {
		c := rem
		if c > int64(len(zeros)) {
			c = int64(len(zeros))
		}
		crc = crc32.Update(crc, castagnoli, zeros[:c])
		rem -= c
	}
	return crc
}

// eachRun visits the contiguous element runs (along the last dimension)
// of a section in row-major order, calling fn with the flat element
// offset into the array, the packed buffer offset, and the run length.
// Offsets are strictly increasing across calls.
func eachRun(dims, lo, shape []int64, fn func(off, bufOff, run int64) error) error {
	rank := len(dims)
	if rank == 0 {
		return fn(0, 0, 1)
	}
	strides := make([]int64, rank)
	s := int64(1)
	for i := rank - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	run := shape[rank-1]
	idx := make([]int64, rank-1)
	bufOff := int64(0)
	for {
		off := lo[rank-1] * strides[rank-1]
		for i := 0; i < rank-1; i++ {
			off += (lo[i] + idx[i]) * strides[i]
		}
		if err := fn(off, bufOff, run); err != nil {
			return err
		}
		bufOff += run
		d := rank - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			return nil
		}
	}
}

// FlatOffset returns the row-major flat element offset of lo in an
// array with the given dims — the element coordinate BitFlipper takes.
func FlatOffset(dims, lo []int64) int64 {
	off := int64(0)
	for i := range dims {
		off = off*dims[i] + lo[i]
	}
	return off
}

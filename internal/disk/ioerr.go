package disk

import (
	"errors"
	"fmt"
	"strings"
	"syscall"
)

// IOError is the typed error returned by section-level disk I/O. It
// carries enough context to attribute a fault (array, section, op) and
// classifies the failure as transient (worth retrying) or persistent.
//
// IOError is errors.Is/As compatible: backends wrap the underlying
// cause (an OS error, a validation error, or an injected fault), so
// callers can use errors.As to recover the *IOError and errors.Is to
// test for a specific cause. Never compare disk errors with == or by
// matching message text; the ooclint "ioerr" analyzer flags both.
type IOError struct {
	Op        string  // "read" or "write"
	Array     string  // array name
	Lo        []int64 // section origin (copied; safe to retain)
	Shape     []int64 // section shape (copied; safe to retain)
	Retryable bool    // true if the fault is transient
	Err       error   // underlying cause
}

// NewIOError builds an *IOError, copying lo and shape so the error
// remains valid even when the caller reuses its index slices (the
// executor mutates its walk slices in place).
func NewIOError(op, array string, lo, shape []int64, retryable bool, err error) *IOError {
	return &IOError{
		Op:        op,
		Array:     array,
		Lo:        append([]int64(nil), lo...),
		Shape:     append([]int64(nil), shape...),
		Retryable: retryable,
		Err:       err,
	}
}

// Transient reports whether the fault is classified as transient, i.e.
// a retry of the same operation may succeed.
func (e *IOError) Transient() bool { return e.Retryable }

// Error formats the failure with op, array, section and classification.
func (e *IOError) Error() string {
	kind := "persistent"
	if e.Retryable {
		kind = "transient"
	}
	inner := ""
	if e.Err != nil {
		// The cause frequently carries its own "disk: " prefix;
		// strip it for display so the message reads cleanly. The
		// wrapped error is preserved verbatim for errors.Is.
		inner = ": " + strings.TrimPrefix(e.Err.Error(), "disk: ")
	}
	if len(e.Lo) == 0 && len(e.Shape) == 0 {
		return fmt.Sprintf("disk: %s %q (%s)%s", e.Op, e.Array, kind, inner)
	}
	return fmt.Sprintf("disk: %s %q section lo=%v shape=%v (%s)%s",
		e.Op, e.Array, e.Lo, e.Shape, kind, inner)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *IOError) Unwrap() error { return e.Err }

// IsTransient reports whether err wraps a transient *IOError. A nil
// error and errors outside the taxonomy are not transient.
func IsTransient(err error) bool {
	var ioe *IOError
	return errors.As(err, &ioe) && ioe.Retryable
}

// transientOS classifies raw operating-system errors: interrupted or
// would-block conditions are worth retrying, anything else (ENOSPC,
// EBADF, corrupt file, ...) is treated as persistent.
func transientOS(err error) bool {
	return errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.ETIMEDOUT) ||
		errors.Is(err, syscall.EBUSY)
}

// wrapIO wraps err in an *IOError unless it already is one (injected
// faults arrive pre-classified) or is nil.
func wrapIO(op, array string, lo, shape []int64, retryable bool, err error) error {
	if err == nil {
		return nil
	}
	var ioe *IOError
	if errors.As(err, &ioe) {
		return err
	}
	return NewIOError(op, array, lo, shape, retryable, err)
}

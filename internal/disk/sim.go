package disk

import (
	"fmt"

	"repro/internal/machine"
)

// Sim is the simulated disk backend. In data mode it stores array contents
// in memory, so generated code can be verified numerically; in cost-only
// mode it stores nothing and merely accounts I/O, which allows paper-scale
// array extents (terabytes of virtual data).
type Sim struct {
	sl       statsLocked
	withData bool
	arrays   map[string]*simArray
	closed   bool
}

// NewSim creates a simulated disk with the given parameters. withData
// selects data mode.
func NewSim(d machine.Disk, withData bool) *Sim {
	return &Sim{
		sl:       statsLocked{d: d},
		withData: withData,
		arrays:   map[string]*simArray{},
	}
}

type simArray struct {
	sim  *Sim
	name string
	dims []int64
	data []float64 // nil in cost-only mode
}

// Create allocates a new array (zero-filled in data mode).
func (s *Sim) Create(name string, dims []int64) (Array, error) {
	if s.closed {
		return nil, fmt.Errorf("disk: backend closed")
	}
	if _, ok := s.arrays[name]; ok {
		return nil, fmt.Errorf("disk: array %q already exists", name)
	}
	a := &simArray{sim: s, name: name, dims: append([]int64(nil), dims...)}
	if s.withData {
		n := int64(1)
		for _, d := range dims {
			if d <= 0 {
				return nil, fmt.Errorf("disk: non-positive dim %d for %q", d, name)
			}
			n *= d
		}
		const maxDataElems = 1 << 28 // 2 GiB of float64: data mode is for tests
		if n > maxDataElems {
			return nil, fmt.Errorf("disk: array %q too large for data mode (%d elements)", name, n)
		}
		a.data = make([]float64, n)
	}
	s.arrays[name] = a
	return a, nil
}

// Open returns an existing array.
func (s *Sim) Open(name string) (Array, error) {
	a, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("disk: array %q does not exist", name)
	}
	return a, nil
}

// Stats returns the accumulated I/O statistics.
func (s *Sim) Stats() Stats { return s.sl.snapshot() }

// ResetStats zeroes the counters.
func (s *Sim) ResetStats() { s.sl.reset() }

// Close releases the backend.
func (s *Sim) Close() error {
	s.closed = true
	s.arrays = nil
	return nil
}

func (a *simArray) Name() string  { return a.name }
func (a *simArray) Dims() []int64 { return append([]int64(nil), a.dims...) }

func (a *simArray) ReadSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return err
	}
	a.sim.sl.chargeRead(n * 8)
	if a.data == nil || buf == nil {
		return nil
	}
	if int64(len(buf)) != n {
		return fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n)
	}
	copySection(a.data, a.dims, lo, shape, buf, false)
	return nil
}

func (a *simArray) WriteSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return err
	}
	a.sim.sl.chargeWrite(n * 8)
	if a.data == nil || buf == nil {
		return nil
	}
	if int64(len(buf)) != n {
		return fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n)
	}
	copySection(a.data, a.dims, lo, shape, buf, true)
	return nil
}

// copySection moves a row-major section between the full array and a
// packed buffer. Contiguous runs along the last dimension are copied with
// copy().
func copySection(data []float64, dims, lo, shape []int64, buf []float64, write bool) {
	rank := len(dims)
	if rank == 0 {
		if write {
			data[0] = buf[0]
		} else {
			buf[0] = data[0]
		}
		return
	}
	// Strides of the full array.
	strides := make([]int64, rank)
	s := int64(1)
	for i := rank - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	run := shape[rank-1]
	// Iterate all but the last dimension.
	idx := make([]int64, rank-1)
	bufOff := int64(0)
	for {
		off := lo[rank-1] * strides[rank-1]
		for i := 0; i < rank-1; i++ {
			off += (lo[i] + idx[i]) * strides[i]
		}
		if write {
			copy(data[off:off+run], buf[bufOff:bufOff+run])
		} else {
			copy(buf[bufOff:bufOff+run], data[off:off+run])
		}
		bufOff += run
		d := rank - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
}

// LoadArray fills a whole simulated array from data without charging
// stats; used to stage test inputs.
func (s *Sim) LoadArray(name string, data []float64) error {
	a, ok := s.arrays[name]
	if !ok {
		return fmt.Errorf("disk: array %q does not exist", name)
	}
	if a.data == nil {
		return fmt.Errorf("disk: %q is cost-only; cannot load data", name)
	}
	if len(data) != len(a.data) {
		return fmt.Errorf("disk: data length %d does not match array size %d", len(data), len(a.data))
	}
	copy(a.data, data)
	return nil
}

// DumpArray returns a copy of a whole simulated array's contents without
// charging stats; used to check test outputs.
func (s *Sim) DumpArray(name string) ([]float64, error) {
	a, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("disk: array %q does not exist", name)
	}
	if a.data == nil {
		return nil, fmt.Errorf("disk: %q is cost-only; no data to dump", name)
	}
	return append([]float64(nil), a.data...), nil
}

package disk

import (
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Sim is the simulated disk backend. In data mode it stores array contents
// in memory, so generated code can be verified numerically; in cost-only
// mode it stores nothing and merely accounts I/O, which allows paper-scale
// array extents (terabytes of virtual data).
//
// Sim is natively asynchronous: ReadAsync/WriteAsync enqueue the operation
// on a single background I/O-channel worker, which models a disk that
// overlaps the positioning (seek) of a queued operation with the transfer
// of the one in progress. ChannelStats exposes that timeline.
type Sim struct {
	sl       statsLocked
	withData bool
	arrays   map[string]*simArray
	closed   bool

	chOnce sync.Once
	ch     chan simOp

	chMu sync.Mutex
	chst ChannelStats
}

// ChannelStats is the asynchronous I/O-channel timeline of the simulator.
type ChannelStats struct {
	// Ops is the number of operations processed asynchronously.
	Ops int64
	// QueuedOps counts operations that arrived while the channel was
	// busy; their seek overlaps the in-progress transfer.
	QueuedOps int64
	// BusySeconds is the modelled busy time of the channel under
	// overlapped seek+transfer: a queued operation pays only its transfer
	// time, an operation that finds the channel idle pays seek+transfer.
	BusySeconds float64
}

// simOp is one queued asynchronous section operation.
type simOp struct {
	a         *simArray
	read      bool
	lo, shape []int64
	buf       []float64
	c         *completion
}

// NewSim creates a simulated disk with the given parameters. withData
// selects data mode.
func NewSim(d machine.Disk, withData bool) *Sim {
	return &Sim{
		sl:       statsLocked{d: d},
		withData: withData,
		arrays:   map[string]*simArray{},
	}
}

type simArray struct {
	sim  *Sim
	name string
	dims []int64
	data []float64 // nil in cost-only mode
}

// Create allocates a new array (zero-filled in data mode).
func (s *Sim) Create(name string, dims []int64) (Array, error) {
	if s.closed {
		return nil, fmt.Errorf("disk: backend closed")
	}
	if _, ok := s.arrays[name]; ok {
		return nil, fmt.Errorf("disk: array %q already exists", name)
	}
	a := &simArray{sim: s, name: name, dims: append([]int64(nil), dims...)}
	if s.withData {
		n := int64(1)
		for _, d := range dims {
			if d <= 0 {
				return nil, fmt.Errorf("disk: non-positive dim %d for %q", d, name)
			}
			n *= d
		}
		const maxDataElems = 1 << 28 // 2 GiB of float64: data mode is for tests
		if n > maxDataElems {
			return nil, fmt.Errorf("disk: array %q too large for data mode (%d elements)", name, n)
		}
		a.data = make([]float64, n)
	}
	s.arrays[name] = a
	return a, nil
}

// Open returns an existing array.
func (s *Sim) Open(name string) (Array, error) {
	a, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("disk: array %q does not exist", name)
	}
	return a, nil
}

// Stats returns the accumulated I/O statistics.
func (s *Sim) Stats() Stats { return s.sl.snapshot() }

// SetMetrics mirrors every subsequent I/O charge into reg (nil detaches).
func (s *Sim) SetMetrics(reg *obs.Registry) { s.sl.setMetrics(reg) }

// ResetStats zeroes the counters (channel statistics included).
func (s *Sim) ResetStats() {
	s.sl.reset()
	s.chMu.Lock()
	s.chst = ChannelStats{}
	s.chMu.Unlock()
}

// AsyncCapable reports native AsyncArray support.
func (s *Sim) AsyncCapable() bool { return true }

// ChannelStats returns the asynchronous I/O-channel timeline. All pending
// asynchronous operations must have been awaited first.
func (s *Sim) ChannelStats() ChannelStats {
	s.chMu.Lock()
	defer s.chMu.Unlock()
	return s.chst
}

// channel lazily starts the I/O-channel worker and returns its queue.
func (s *Sim) channel() chan simOp {
	s.chOnce.Do(func() {
		s.ch = make(chan simOp, 128)
		go s.channelWorker(s.ch)
	})
	return s.ch
}

// channelWorker drains the queue serially — the single disk channel. An
// operation pulled from a non-empty queue had its seek overlapped with
// the previous transfer; one that finds the channel idle pays the seek.
// The queue is passed in so Close (which nils the field) never races the
// worker's receives.
func (s *Sim) channelWorker(ch chan simOp) {
	for {
		op, ok := <-ch
		if !ok {
			return
		}
		queued := false
		for {
			op.c.finish(s.runOp(op, queued))
			select {
			case next, ok := <-ch:
				if !ok {
					return
				}
				op = next
				queued = true
			default:
				queued = false
			}
			if !queued {
				break
			}
		}
	}
}

// runOp performs one asynchronous operation: the same validation, stats
// charge, and data movement as the synchronous path, plus the channel
// timeline accounting.
func (s *Sim) runOp(op simOp, queued bool) error {
	var err error
	if op.read {
		err = op.a.ReadSection(op.lo, op.shape, op.buf)
	} else {
		err = op.a.WriteSection(op.lo, op.shape, op.buf)
	}
	if err != nil {
		return err
	}
	n, _ := checkSection(op.a.dims, op.lo, op.shape)
	transfer := float64(n*8) / s.sl.d.ReadBandwidth
	if !op.read {
		transfer = float64(n*8) / s.sl.d.WriteBandwidth
	}
	busy := transfer
	if !queued {
		busy += s.sl.d.SeekTime
	}
	s.chMu.Lock()
	s.chst.Ops++
	if queued {
		s.chst.QueuedOps++
	}
	s.chst.BusySeconds += busy
	s.chMu.Unlock()
	return nil
}

// Close releases the backend and stops the channel worker. Pending
// asynchronous operations must have been awaited first.
func (s *Sim) Close() error {
	s.closed = true
	s.arrays = nil
	if s.ch != nil {
		close(s.ch)
		s.ch = nil
	}
	return nil
}

func (a *simArray) Name() string  { return a.name }
func (a *simArray) Dims() []int64 { return append([]int64(nil), a.dims...) }

// ReadAsync enqueues the read on the simulator's I/O channel.
func (a *simArray) ReadAsync(lo, shape []int64, buf []float64) Completion {
	c := newCompletion()
	a.sim.channel() <- simOp{a: a, read: true, lo: lo, shape: shape, buf: buf, c: c}
	return c
}

// WriteAsync enqueues the write on the simulator's I/O channel.
func (a *simArray) WriteAsync(lo, shape []int64, buf []float64) Completion {
	c := newCompletion()
	a.sim.channel() <- simOp{a: a, read: false, lo: lo, shape: shape, buf: buf, c: c}
	return c
}

func (a *simArray) ReadSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("read", a.name, lo, shape, false, err)
	}
	a.sim.sl.chargeRead(a.name, n*8)
	if a.data == nil || buf == nil {
		return nil
	}
	if int64(len(buf)) != n {
		return NewIOError("read", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	copySection(a.data, a.dims, lo, shape, buf, false)
	return nil
}

func (a *simArray) WriteSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("write", a.name, lo, shape, false, err)
	}
	a.sim.sl.chargeWrite(a.name, n*8)
	if a.data == nil || buf == nil {
		return nil
	}
	if int64(len(buf)) != n {
		return NewIOError("write", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	copySection(a.data, a.dims, lo, shape, buf, true)
	return nil
}

// copySection moves a row-major section between the full array and a
// packed buffer. Contiguous runs along the last dimension are copied with
// copy().
func copySection(data []float64, dims, lo, shape []int64, buf []float64, write bool) {
	rank := len(dims)
	if rank == 0 {
		if write {
			data[0] = buf[0]
		} else {
			buf[0] = data[0]
		}
		return
	}
	// Strides of the full array.
	strides := make([]int64, rank)
	s := int64(1)
	for i := rank - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	run := shape[rank-1]
	// Iterate all but the last dimension.
	idx := make([]int64, rank-1)
	bufOff := int64(0)
	for {
		off := lo[rank-1] * strides[rank-1]
		for i := 0; i < rank-1; i++ {
			off += (lo[i] + idx[i]) * strides[i]
		}
		if write {
			copy(data[off:off+run], buf[bufOff:bufOff+run])
		} else {
			copy(buf[bufOff:bufOff+run], data[off:off+run])
		}
		bufOff += run
		d := rank - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
}

// LoadArray fills a whole simulated array from data without charging
// stats; used to stage test inputs.
func (s *Sim) LoadArray(name string, data []float64) error {
	a, ok := s.arrays[name]
	if !ok {
		return fmt.Errorf("disk: array %q does not exist", name)
	}
	if a.data == nil {
		return fmt.Errorf("disk: %q is cost-only; cannot load data", name)
	}
	if len(data) != len(a.data) {
		return fmt.Errorf("disk: data length %d does not match array size %d", len(data), len(a.data))
	}
	copy(a.data, data)
	return nil
}

// DumpArray returns a copy of a whole simulated array's contents without
// charging stats; used to check test outputs.
func (s *Sim) DumpArray(name string) ([]float64, error) {
	a, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("disk: array %q does not exist", name)
	}
	if a.data == nil {
		return nil, fmt.Errorf("disk: %q is cost-only; no data to dump", name)
	}
	return append([]float64(nil), a.data...), nil
}

package disk

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Sim is the simulated disk backend. In data mode it stores array contents
// in memory, so generated code can be verified numerically; in cost-only
// mode it stores nothing and merely accounts I/O, which allows paper-scale
// array extents (terabytes of virtual data).
//
// Sim is natively asynchronous: ReadAsync/WriteAsync enqueue the operation
// on a single background I/O-channel worker, which models a disk that
// overlaps the positioning (seek) of a queued operation with the transfer
// of the one in progress. ChannelStats exposes that timeline.
type Sim struct {
	sl         statsLocked
	withData   bool
	blockElems int64
	arrays     map[string]*simArray
	closed     bool

	chOnce sync.Once
	ch     chan simOp

	chMu sync.Mutex
	chst ChannelStats
}

// ChannelStats is the asynchronous I/O-channel timeline of the simulator.
type ChannelStats struct {
	// Ops is the number of operations processed asynchronously.
	Ops int64
	// QueuedOps counts operations that arrived while the channel was
	// busy; their seek overlaps the in-progress transfer.
	QueuedOps int64
	// BusySeconds is the modelled busy time of the channel under
	// overlapped seek+transfer: a queued operation pays only its transfer
	// time, an operation that finds the channel idle pays seek+transfer.
	BusySeconds float64
}

// simOp is one queued asynchronous section operation.
type simOp struct {
	a         *simArray
	read      bool
	lo, shape []int64
	buf       []float64
	c         *completion
}

// NewSim creates a simulated disk with the given parameters. withData
// selects data mode.
func NewSim(d machine.Disk, withData bool) *Sim {
	return &Sim{
		sl:         statsLocked{d: d},
		withData:   withData,
		blockElems: DefaultBlockElems,
		arrays:     map[string]*simArray{},
	}
}

// SetBlockElems overrides the shadow-checksum granularity for
// subsequently created arrays, mirroring FileStore.SetBlockElems so
// parity tests can shrink both backends' blocks identically.
func (s *Sim) SetBlockElems(n int64) {
	if n > 0 {
		s.blockElems = n
	}
}

type simArray struct {
	sim        *Sim
	name       string
	dims       []int64
	n          int64
	blockElems int64
	data       []float64 // nil in cost-only mode

	// mu orders section I/O against the shadow integrity state, exactly
	// as fileArray.mu does for the real store.
	mu sync.RWMutex
	// sums is the shadow checksum index (data mode): the CRC32C of the
	// little-endian encoding of each block, the same bytes FileStore
	// hashes, so both backends verify — and detect — identically.
	sums []uint32
	// poison marks rotten blocks in cost-only mode, where there is no
	// data to hash: injected corruption poisons a block, verification
	// reports it, RebuildChecksums clears it.
	poison map[int64]bool
}

// Create allocates a new array (zero-filled in data mode).
func (s *Sim) Create(name string, dims []int64) (Array, error) {
	if s.closed {
		return nil, fmt.Errorf("disk: backend closed")
	}
	if _, ok := s.arrays[name]; ok {
		return nil, fmt.Errorf("disk: array %q already exists", name)
	}
	a := &simArray{sim: s, name: name, dims: append([]int64(nil), dims...), blockElems: s.blockElems}
	a.n = 1
	for _, d := range dims {
		a.n *= d
	}
	if s.withData {
		for _, d := range dims {
			if d <= 0 {
				return nil, fmt.Errorf("disk: non-positive dim %d for %q", d, name)
			}
		}
		const maxDataElems = 1 << 28 // 2 GiB of float64: data mode is for tests
		if a.n > maxDataElems {
			return nil, fmt.Errorf("disk: array %q too large for data mode (%d elements)", name, a.n)
		}
		a.data = make([]float64, a.n)
		a.sums = freshSums(a.n, a.blockElems)
	} else {
		a.poison = map[int64]bool{}
	}
	s.arrays[name] = a
	return a, nil
}

// Open returns an existing array.
func (s *Sim) Open(name string) (Array, error) {
	a, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("disk: array %q does not exist", name)
	}
	return a, nil
}

// Stats returns the accumulated I/O statistics.
func (s *Sim) Stats() Stats { return s.sl.snapshot() }

// Integrity returns the lifetime checksum-verification tallies (they
// survive ResetStats; see statsLocked).
func (s *Sim) Integrity() IntegrityCounts { return s.sl.integSnapshot() }

// SetMetrics mirrors every subsequent I/O charge into reg (nil detaches).
func (s *Sim) SetMetrics(reg *obs.Registry) { s.sl.setMetrics(reg) }

// ResetStats zeroes the counters (channel statistics included).
func (s *Sim) ResetStats() {
	s.sl.reset()
	s.chMu.Lock()
	s.chst = ChannelStats{}
	s.chMu.Unlock()
}

// AsyncCapable reports native AsyncArray support.
func (s *Sim) AsyncCapable() bool { return true }

// ChannelStats returns the asynchronous I/O-channel timeline. All pending
// asynchronous operations must have been awaited first.
func (s *Sim) ChannelStats() ChannelStats {
	s.chMu.Lock()
	defer s.chMu.Unlock()
	return s.chst
}

// channel lazily starts the I/O-channel worker and returns its queue.
func (s *Sim) channel() chan simOp {
	s.chOnce.Do(func() {
		s.ch = make(chan simOp, 128)
		go s.channelWorker(s.ch)
	})
	return s.ch
}

// channelWorker drains the queue serially — the single disk channel. An
// operation pulled from a non-empty queue had its seek overlapped with
// the previous transfer; one that finds the channel idle pays the seek.
// The queue is passed in so Close (which nils the field) never races the
// worker's receives.
func (s *Sim) channelWorker(ch chan simOp) {
	for {
		op, ok := <-ch
		if !ok {
			return
		}
		queued := false
		for {
			op.c.finish(s.runOp(op, queued))
			select {
			case next, ok := <-ch:
				if !ok {
					return
				}
				op = next
				queued = true
			default:
				queued = false
			}
			if !queued {
				break
			}
		}
	}
}

// runOp performs one asynchronous operation: the same validation, stats
// charge, and data movement as the synchronous path, plus the channel
// timeline accounting.
func (s *Sim) runOp(op simOp, queued bool) error {
	var err error
	if op.read {
		err = op.a.ReadSection(op.lo, op.shape, op.buf)
	} else {
		err = op.a.WriteSection(op.lo, op.shape, op.buf)
	}
	if err != nil {
		return err
	}
	n, _ := checkSection(op.a.dims, op.lo, op.shape)
	transfer := float64(n*8) / s.sl.d.ReadBandwidth
	if !op.read {
		transfer = float64(n*8) / s.sl.d.WriteBandwidth
	}
	busy := transfer
	if !queued {
		busy += s.sl.d.SeekTime
	}
	s.chMu.Lock()
	s.chst.Ops++
	if queued {
		s.chst.QueuedOps++
	}
	s.chst.BusySeconds += busy
	s.chMu.Unlock()
	return nil
}

// Close releases the backend and stops the channel worker. Pending
// asynchronous operations must have been awaited first.
func (s *Sim) Close() error {
	s.closed = true
	s.arrays = nil
	if s.ch != nil {
		close(s.ch)
		s.ch = nil
	}
	return nil
}

func (a *simArray) Name() string  { return a.name }
func (a *simArray) Dims() []int64 { return append([]int64(nil), a.dims...) }

// ReadAsync enqueues the read on the simulator's I/O channel.
func (a *simArray) ReadAsync(lo, shape []int64, buf []float64) Completion {
	c := newCompletion()
	a.sim.channel() <- simOp{a: a, read: true, lo: lo, shape: shape, buf: buf, c: c}
	return c
}

// WriteAsync enqueues the write on the simulator's I/O channel.
func (a *simArray) WriteAsync(lo, shape []int64, buf []float64) Completion {
	c := newCompletion()
	a.sim.channel() <- simOp{a: a, read: false, lo: lo, shape: shape, buf: buf, c: c}
	return c
}

// verifyRangeLocked mirrors fileArray.verifyRangeLocked over the shadow
// index: it verifies every block covering element range [off, off+run)
// with ordinal > *last, hashing the same little-endian bytes the file
// store hashes, so both backends tally identical counts under identical
// op streams. The caller holds a.mu. Data mode only.
func (a *simArray) verifyRangeLocked(off, run int64, last, checked *int64, ie **IntegrityError) {
	first := off / a.blockElems
	if first <= *last {
		first = *last + 1
	}
	lastB := (off + run - 1) / a.blockElems
	for b := first; b <= lastB; b++ {
		blo, bhi := blockSpan(b, a.blockElems, a.n)
		crc := crcFloats(a.data[blo:bhi])
		*checked++
		if crc != a.sums[b] {
			if *ie == nil {
				*ie = &IntegrityError{Array: a.name, Block: b, Stored: a.sums[b], Computed: crc}
			}
			(*ie).Blocks++
		}
	}
	if lastB > *last {
		*last = lastB
	}
}

// verifySectionLocked verifies the blocks a section covers, charging
// the verification tallies and returning the wrapped integrity error on
// a mismatch. op is "read" or "write". The caller holds a.mu.
//
// Data mode is exact (and count-identical to FileStore). Cost-only mode
// has no bytes to hash, so it approximates: the verified-block tally is
// the packed section's block count, and detection tests the injector's
// poisoned blocks against the section's flat-offset hull — conservative
// (it may over-detect between the hull's rows), which only means a
// spurious heal in cost-only chaos studies, never a miss.
func (a *simArray) verifySectionLocked(op string, lo, shape []int64, nSec int64) error {
	var (
		checked int64
		ie      *IntegrityError
	)
	if a.data != nil {
		last := int64(-1)
		eachRun(a.dims, lo, shape, func(off, bufOff, run int64) error {
			a.verifyRangeLocked(off, run, &last, &checked, &ie)
			return nil
		})
	} else {
		checked = blockCount(nSec, a.blockElems)
		if len(a.poison) > 0 {
			hi := make([]int64, len(a.dims))
			for i := range hi {
				hi[i] = lo[i] + shape[i] - 1
			}
			first := FlatOffset(a.dims, lo) / a.blockElems
			lastB := FlatOffset(a.dims, hi) / a.blockElems
			for b := first; b <= lastB; b++ {
				if a.poison[b] {
					if ie == nil {
						ie = &IntegrityError{Array: a.name, Block: b}
					}
					ie.Blocks++
				}
			}
		}
	}
	a.sim.sl.chargeVerify(a.name, checked)
	if ie != nil {
		a.sim.sl.chargeDetect(a.name, ie.Blocks)
		// Rotten data re-reads identically: never retryable in place.
		return wrapIO(op, a.name, lo, shape, false, ie)
	}
	return nil
}

// reindexLocked recomputes the shadow checksum of every block covering
// the just-written section. The caller holds a.mu. Data mode only.
func (a *simArray) reindexLocked(lo, shape []int64) {
	last := int64(-1)
	eachRun(a.dims, lo, shape, func(off, bufOff, run int64) error {
		first := off / a.blockElems
		if first <= last {
			first = last + 1
		}
		lastB := (off + run - 1) / a.blockElems
		for b := first; b <= lastB; b++ {
			blo, bhi := blockSpan(b, a.blockElems, a.n)
			a.sums[b] = crcFloats(a.data[blo:bhi])
		}
		if lastB > last {
			last = lastB
		}
		return nil
	})
}

func (a *simArray) ReadSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("read", a.name, lo, shape, false, err)
	}
	a.sim.sl.chargeRead(a.name, n*8)
	a.mu.RLock()
	defer a.mu.RUnlock()
	if err := a.verifySectionLocked("read", lo, shape, n); err != nil {
		return err
	}
	if a.data == nil || buf == nil {
		return nil
	}
	if int64(len(buf)) != n {
		return NewIOError("read", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	copySection(a.data, a.dims, lo, shape, buf, false)
	return nil
}

func (a *simArray) WriteSection(lo, shape []int64, buf []float64) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("write", a.name, lo, shape, false, err)
	}
	a.sim.sl.chargeWrite(a.name, n*8)
	a.mu.Lock()
	defer a.mu.Unlock()
	// Read-modify-verify: a block is only partially covered by this
	// section, so its surviving bytes feed the new checksum — verify
	// them first rather than silently blessing rot into the index.
	if err := a.verifySectionLocked("write", lo, shape, n); err != nil {
		return err
	}
	if a.data == nil || buf == nil {
		return nil
	}
	if int64(len(buf)) != n {
		return NewIOError("write", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	copySection(a.data, a.dims, lo, shape, buf, true)
	a.reindexLocked(lo, shape)
	return nil
}

// FlipBit flips one bit of the stored element at flat offset elem
// beneath the shadow index (bit rot); in cost-only mode the covering
// block is poisoned instead.
func (a *simArray) FlipBit(elem int64, bit uint) error {
	if elem < 0 || elem >= a.n || bit > 63 {
		return fmt.Errorf("disk: flip-bit target out of range for %q", a.name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.data != nil {
		a.data[elem] = math.Float64frombits(math.Float64bits(a.data[elem]) ^ (1 << bit))
	} else {
		a.poison[elem/a.blockElems] = true
	}
	return nil
}

// WriteSectionSilent performs a write that lies about its outcome,
// mirroring fileArray.WriteSectionSilent: charged and indexed as a full
// success, but the stored values keep the previous contents (SilentLost)
// or everything past the leading half of the rows (SilentTorn). In
// cost-only mode the blocks covering the reverted region are poisoned.
func (a *simArray) WriteSectionSilent(lo, shape []int64, buf []float64, mode SilentMode) error {
	n, err := checkSection(a.dims, lo, shape)
	if err != nil {
		return wrapIO("write", a.name, lo, shape, false, err)
	}
	a.sim.sl.chargeWrite(a.name, n*8)
	keep := int64(0) // packed elements that genuinely persist
	if mode == SilentTorn {
		keep = silentPrefixElems(shape)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.data == nil {
		// Poison the flat-offset hull of the reverted region.
		rlo := append([]int64(nil), lo...)
		if keep > 0 {
			rlo[0] += shape[0] / 2
		}
		hi := make([]int64, len(a.dims))
		for i := range hi {
			hi[i] = lo[i] + shape[i] - 1
		}
		first := FlatOffset(a.dims, rlo) / a.blockElems
		lastB := FlatOffset(a.dims, hi) / a.blockElems
		for b := first; b <= lastB; b++ {
			a.poison[b] = true
		}
		return nil
	}
	if buf == nil {
		return nil
	}
	if int64(len(buf)) != n {
		return NewIOError("write", a.name, lo, shape, false,
			fmt.Errorf("disk: buffer length %d does not match section size %d", len(buf), n))
	}
	old := make([]float64, n)
	copySection(a.data, a.dims, lo, shape, old, false)
	// Index the write as if it fully succeeded...
	copySection(a.data, a.dims, lo, shape, buf, true)
	a.reindexLocked(lo, shape)
	// ...then put the old values back underneath it.
	mixed := make([]float64, n)
	copy(mixed[:keep], buf[:keep])
	copy(mixed[keep:], old[keep:])
	copySection(a.data, a.dims, lo, shape, mixed, true)
	return nil
}

// copySection moves a row-major section between the full array and a
// packed buffer. Contiguous runs along the last dimension are copied with
// copy().
func copySection(data []float64, dims, lo, shape []int64, buf []float64, write bool) {
	rank := len(dims)
	if rank == 0 {
		if write {
			data[0] = buf[0]
		} else {
			buf[0] = data[0]
		}
		return
	}
	// Strides of the full array.
	strides := make([]int64, rank)
	s := int64(1)
	for i := rank - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	run := shape[rank-1]
	// Iterate all but the last dimension.
	idx := make([]int64, rank-1)
	bufOff := int64(0)
	for {
		off := lo[rank-1] * strides[rank-1]
		for i := 0; i < rank-1; i++ {
			off += (lo[i] + idx[i]) * strides[i]
		}
		if write {
			copy(data[off:off+run], buf[bufOff:bufOff+run])
		} else {
			copy(buf[bufOff:bufOff+run], data[off:off+run])
		}
		bufOff += run
		d := rank - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
}

// LoadArray fills a whole simulated array from data without charging
// stats; used to stage test inputs.
func (s *Sim) LoadArray(name string, data []float64) error {
	a, ok := s.arrays[name]
	if !ok {
		return fmt.Errorf("disk: array %q does not exist", name)
	}
	if a.data == nil {
		return fmt.Errorf("disk: %q is cost-only; cannot load data", name)
	}
	if len(data) != len(a.data) {
		return fmt.Errorf("disk: data length %d does not match array size %d", len(data), len(a.data))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	copy(a.data, data)
	// Out-of-band staging: the loaded contents become the new truth.
	for b := range a.sums {
		blo, bhi := blockSpan(int64(b), a.blockElems, a.n)
		a.sums[b] = crcFloats(a.data[blo:bhi])
	}
	return nil
}

// ArrayNames lists the simulator's arrays in sorted order.
func (s *Sim) ArrayNames() []string {
	names := make([]string, 0, len(s.arrays))
	for name := range s.arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// VerifyArray checks every block of one array against its shadow index
// (data mode) or lists its poisoned blocks (cost-only mode). Like the
// file store's scrub it charges nothing.
func (s *Sim) VerifyArray(name string) ([]ScrubDefect, int64, error) {
	a, ok := s.arrays[name]
	if !ok {
		return nil, 0, fmt.Errorf("disk: array %q does not exist", name)
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	blocks := blockCount(a.n, a.blockElems)
	var defects []ScrubDefect
	if a.data != nil {
		for b := int64(0); b < blocks; b++ {
			blo, bhi := blockSpan(b, a.blockElems, a.n)
			crc := crcFloats(a.data[blo:bhi])
			if crc != a.sums[b] {
				defects = append(defects, ScrubDefect{Array: name, Block: b, Stored: a.sums[b], Computed: crc})
			}
		}
		return defects, blocks, nil
	}
	poisoned := make([]int64, 0, len(a.poison))
	for b := range a.poison {
		poisoned = append(poisoned, b)
	}
	sort.Slice(poisoned, func(i, j int) bool { return poisoned[i] < poisoned[j] })
	for _, b := range poisoned {
		defects = append(defects, ScrubDefect{Array: name, Block: b})
	}
	return defects, blocks, nil
}

// RebuildChecksums accepts the array's current contents as the new
// truth: the shadow index is recomputed (data mode) or the poison marks
// cleared (cost-only mode).
func (s *Sim) RebuildChecksums(name string) error {
	a, ok := s.arrays[name]
	if !ok {
		return fmt.Errorf("disk: array %q does not exist", name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.data != nil {
		for b := range a.sums {
			blo, bhi := blockSpan(int64(b), a.blockElems, a.n)
			a.sums[b] = crcFloats(a.data[blo:bhi])
		}
		return nil
	}
	a.poison = map[int64]bool{}
	return nil
}

// DumpArray returns a copy of a whole simulated array's contents without
// charging stats; used to check test outputs.
func (s *Sim) DumpArray(name string) ([]float64, error) {
	a, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("disk: array %q does not exist", name)
	}
	if a.data == nil {
		return nil, fmt.Errorf("disk: %q is cost-only; no data to dump", name)
	}
	return append([]float64(nil), a.data...), nil
}

package disk

// The store manifest is the FileStore's crash-consistent catalogue: a
// JSON file listing every array the store knows about with its extents,
// on-disk format, and checksum granularity. It is only ever replaced
// atomically (write-temp + rename), so a reader either sees the previous
// complete manifest or the new one — never a torn mix. Reopen validates
// the directory's files against it before trusting them.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// manifestName is the manifest's file name inside the store directory.
const manifestName = "MANIFEST.json"

// manifestVersion is the current manifest schema version.
const manifestVersion = 2

// manifest is the on-disk catalogue of a FileStore directory.
type manifest struct {
	Version int                      `json:"version"`
	Arrays  map[string]manifestEntry `json:"arrays"`
}

// manifestEntry describes one array in the manifest.
type manifestEntry struct {
	Dims       []int64 `json:"dims"`
	BlockElems int64   `json:"block_elems"`
	// Format is "dra2" for the checksummed native format, "dra1" for a
	// legacy file adopted in place (checksums live only in the sidecar).
	Format string `json:"format"`
}

// loadManifest reads the store manifest, returning (nil, nil) when the
// directory has none (a legacy or brand-new store).
func loadManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("disk: store manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("disk: store manifest %s is corrupt: %w", filepath.Join(dir, manifestName), err)
	}
	if m.Version <= 0 || m.Version > manifestVersion {
		return nil, fmt.Errorf("disk: store manifest has unsupported version %d", m.Version)
	}
	if m.Arrays == nil {
		m.Arrays = map[string]manifestEntry{}
	}
	return &m, nil
}

// writeManifest atomically replaces the store manifest.
func writeManifest(dir string, m *manifest) error {
	m.Version = manifestVersion
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("disk: store manifest: %w", err)
	}
	return atomicWrite(filepath.Join(dir, manifestName), append(raw, '\n'))
}

// atomicWrite replaces path with data via write-temp + fsync + rename,
// so the file at path is always a complete previous or complete new
// version, never a torn write.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("disk: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("disk: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("disk: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("disk: %w", err)
	}
	return nil
}

// validateManifest cross-checks every manifest entry against the files
// actually present. A listed array whose .dra file is gone entirely was
// deleted out-of-band (re-running a saved plan deletes its outputs
// first); the entry is pruned so the store treats the array as removed.
// A file that exists but whose self-describing header disagrees with
// the catalogue is an error — that mismatch is the corruption this
// check exists to catch. Files not listed in the manifest are ignored
// (a legacy store mixes in adopted DRA1 files).
func validateManifest(dir string, m *manifest) (pruned bool, err error) {
	names := make([]string, 0, len(m.Arrays))
	for name := range m.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ent := m.Arrays[name]
		path := filepath.Join(dir, name+".dra")
		if _, serr := os.Stat(path); os.IsNotExist(serr) {
			delete(m.Arrays, name)
			os.Remove(filepath.Join(dir, name+".sum")) // orphan sidecar
			pruned = true
			continue
		}
		dims, blockElems, legacy, err := readHeader(path)
		if err != nil {
			return false, fmt.Errorf("disk: store manifest lists %q but %w", name, err)
		}
		if legacy != (ent.Format == formatDRA1) {
			return false, fmt.Errorf("disk: store manifest says %q is %s but the file disagrees", name, ent.Format)
		}
		if len(dims) != len(ent.Dims) {
			return false, fmt.Errorf("disk: store manifest says %q has rank %d but the file has rank %d", name, len(ent.Dims), len(dims))
		}
		for i := range dims {
			if dims[i] != ent.Dims[i] {
				return false, fmt.Errorf("disk: store manifest says %q has dims %v but the file has %v", name, ent.Dims, dims)
			}
		}
		if !legacy && blockElems != ent.BlockElems {
			return false, fmt.Errorf("disk: store manifest says %q uses %d-element blocks but the file says %d", name, ent.BlockElems, blockElems)
		}
	}
	return pruned, nil
}

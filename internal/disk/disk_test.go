package disk

import (
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func testDisk() machine.Disk {
	return machine.Disk{SeekTime: 0.01, ReadBandwidth: 1000, WriteBandwidth: 500}
}

func TestSimDataRoundTrip(t *testing.T) {
	s := NewSim(testDisk(), true)
	a, err := s.Create("A", []int64{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{1, 2, 3, 4, 5, 6}
	if err := a.WriteSection([]int64{1, 2}, []int64{2, 3}, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 6)
	if err := a.ReadSection([]int64{1, 2}, []int64{2, 3}, got); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, got, buf)
		}
	}
	// Untouched region must be zero.
	z := make([]float64, 1)
	if err := a.ReadSection([]int64{0, 0}, []int64{1, 1}, z); err != nil {
		t.Fatal(err)
	}
	if z[0] != 0 {
		t.Fatal("untouched element not zero")
	}
}

func TestSimStatsAccounting(t *testing.T) {
	s := NewSim(testDisk(), false)
	a, _ := s.Create("A", []int64{100, 100})
	if err := a.ReadSection([]int64{0, 0}, []int64{10, 10}, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteSection([]int64{5, 5}, []int64{20, 4}, nil); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ReadOps != 1 || st.BytesRead != 100*8 {
		t.Fatalf("read stats wrong: %+v", st)
	}
	if st.WriteOps != 1 || st.BytesWritten != 80*8 {
		t.Fatalf("write stats wrong: %+v", st)
	}
	wantRead := 0.01 + 800.0/1000
	wantWrite := 0.01 + 640.0/500
	if st.ReadTime != wantRead || st.WriteTime != wantWrite {
		t.Fatalf("modelled times wrong: %+v (want %g/%g)", st, wantRead, wantWrite)
	}
	if st.Time() != wantRead+wantWrite {
		t.Fatal("Time() mismatch")
	}
	s.ResetStats()
	if s.Stats().ReadOps != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestSimSectionValidation(t *testing.T) {
	s := NewSim(testDisk(), false)
	a, _ := s.Create("A", []int64{4, 4})
	cases := []struct{ lo, shape []int64 }{
		{[]int64{0}, []int64{1}},        // rank mismatch
		{[]int64{0, 0}, []int64{5, 1}},  // overflow
		{[]int64{3, 3}, []int64{2, 1}},  // overflow from offset
		{[]int64{-1, 0}, []int64{1, 1}}, // negative lo
		{[]int64{0, 0}, []int64{0, 1}},  // empty shape
	}
	for i, c := range cases {
		if err := a.ReadSection(c.lo, c.shape, nil); err == nil {
			t.Errorf("case %d: invalid section accepted", i)
		}
	}
}

func TestSimCreateErrors(t *testing.T) {
	s := NewSim(testDisk(), false)
	if _, err := s.Create("A", []int64{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("A", []int64{2}); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if _, err := s.Open("missing"); err == nil {
		t.Fatal("open of missing array must fail")
	}
	sd := NewSim(testDisk(), true)
	if _, err := sd.Create("huge", []int64{1 << 20, 1 << 20}); err == nil {
		t.Fatal("data mode must reject paper-scale arrays")
	}
	if _, err := sd.Create("bad", []int64{0}); err == nil {
		t.Fatal("zero dim must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("B", []int64{2}); err == nil {
		t.Fatal("create after close must fail")
	}
}

func TestSimCostOnlyAllowsHugeArrays(t *testing.T) {
	s := NewSim(testDisk(), false)
	// 40000^2 doubles = 12.8 GB of virtual data.
	a, err := s.Create("A", []int64{40000, 40000})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ReadSection([]int64{0, 0}, []int64{40000, 40000}, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().BytesRead; got != 40000*40000*8 {
		t.Fatalf("bytes read = %d", got)
	}
}

func TestLoadDumpArray(t *testing.T) {
	s := NewSim(testDisk(), true)
	s.Create("A", []int64{2, 2})
	if err := s.LoadArray("A", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := s.DumpArray("A")
	if err != nil {
		t.Fatal(err)
	}
	if got[3] != 4 {
		t.Fatalf("dump = %v", got)
	}
	if s.Stats().ReadOps != 0 || s.Stats().WriteOps != 0 {
		t.Fatal("Load/Dump must not charge stats")
	}
	if err := s.LoadArray("A", []float64{1}); err == nil {
		t.Fatal("wrong length load must fail")
	}
	if err := s.LoadArray("missing", nil); err == nil {
		t.Fatal("load of missing array must fail")
	}
	costOnly := NewSim(testDisk(), false)
	costOnly.Create("B", []int64{2})
	if err := costOnly.LoadArray("B", []float64{1, 2}); err == nil {
		t.Fatal("load on cost-only backend must fail")
	}
	if _, err := costOnly.DumpArray("B"); err == nil {
		t.Fatal("dump on cost-only backend must fail")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir(), testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	a, err := fs.Create("A", []int64{5, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	buf := make([]float64, 2*3*2)
	for i := range buf {
		buf[i] = rng.NormFloat64()
	}
	lo, shape := []int64{1, 2, 1}, []int64{2, 3, 2}
	if err := a.WriteSection(lo, shape, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(buf))
	if err := a.ReadSection(lo, shape, got); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("file round trip mismatch at %d", i)
		}
	}
	// New files are zero-filled.
	z := make([]float64, 1)
	if err := a.ReadSection([]int64{0, 0, 0}, []int64{1, 1, 1}, z); err != nil {
		t.Fatal(err)
	}
	if z[0] != 0 {
		t.Fatal("fresh file array not zero")
	}
}

func TestFileAndSimAgree(t *testing.T) {
	// Property: a random sequence of section writes yields identical reads
	// from both backends.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSim(testDisk(), true)
		fs, err := NewFileStore(t.TempDir(), testDisk())
		if err != nil {
			return false
		}
		defer fs.Close()
		dims := []int64{6, 5}
		sa, _ := sim.Create("X", dims)
		fa, _ := fs.Create("X", dims)
		for k := 0; k < 8; k++ {
			lo := []int64{rng.Int63n(5), rng.Int63n(4)}
			shape := []int64{1 + rng.Int63n(dims[0]-lo[0]), 1 + rng.Int63n(dims[1]-lo[1])}
			buf := make([]float64, shape[0]*shape[1])
			for i := range buf {
				buf[i] = rng.NormFloat64()
			}
			if sa.WriteSection(lo, shape, buf) != nil || fa.WriteSection(lo, shape, buf) != nil {
				return false
			}
		}
		full := dims[0] * dims[1]
		b1 := make([]float64, full)
		b2 := make([]float64, full)
		if sa.ReadSection([]int64{0, 0}, dims, b1) != nil || fa.ReadSection([]int64{0, 0}, dims, b2) != nil {
			return false
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreErrors(t *testing.T) {
	fs, err := NewFileStore(t.TempDir(), testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Create("A", []int64{0}); err == nil {
		t.Fatal("zero dim must fail")
	}
	fs.Create("A", []int64{2})
	if _, err := fs.Create("A", []int64{2}); err == nil {
		t.Fatal("duplicate must fail")
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("open missing must fail")
	}
	a, _ := fs.Open("A")
	if err := a.ReadSection([]int64{0}, []int64{2}, make([]float64, 1)); err == nil {
		t.Fatal("wrong buffer length must fail")
	}
}

func TestFileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	a, err := fs1.Create("A", []int64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 15)
	for i := range buf {
		buf[i] = float64(i) * 1.5
	}
	if err := a.WriteSection([]int64{0, 0}, []int64{3, 5}, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store instance over the same directory must find the array
	// with its dims and contents intact.
	fs2, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	b, err := fs2.Open("A")
	if err != nil {
		t.Fatal(err)
	}
	dims := b.Dims()
	if len(dims) != 2 || dims[0] != 3 || dims[1] != 5 {
		t.Fatalf("reopened dims = %v", dims)
	}
	got := make([]float64, 15)
	if err := b.ReadSection([]int64{0, 0}, []int64{3, 5}, got); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("persistence mismatch at %d", i)
		}
	}
	// Creating over an existing file must fail.
	if _, err := fs2.Create("A", []int64{3, 5}); err == nil {
		t.Fatal("create over existing file must fail")
	}
}

func TestFileStoreRejectsNonDRAFiles(t *testing.T) {
	dir := t.TempDir()
	if err := writeJunk(dir + "/junk.dra"); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Open("junk"); err == nil {
		t.Fatal("non-DRA file must be rejected")
	}
}

func writeJunk(path string) error {
	return os.WriteFile(path, []byte("not a dra file at all........"), 0o644)
}

func TestStatsAdd(t *testing.T) {
	a := Stats{ReadOps: 1, BytesRead: 8, ReadTime: 0.5}
	b := Stats{WriteOps: 2, BytesWritten: 16, WriteTime: 1.5}
	a.Add(b)
	if a.ReadOps != 1 || a.WriteOps != 2 || a.Time() != 2.0 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

package disk

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSumDecode throws arbitrary bytes at the sidecar decoder and
// checks the format invariants: the decoder never panics, accepts only
// structurally valid input, and everything it accepts re-encodes to
// the identical bytes (the format has no slack).
func FuzzSumDecode(f *testing.F) {
	f.Add(encodeSums(nil, 0), int64(0))
	f.Add(encodeSums([]uint32{0xDEADBEEF, 7}, 0), int64(2))
	f.Add(encodeSums([]uint32{1, 2, 3}, sumFlagDirty), int64(3))
	f.Add([]byte("DRS2 not a real sidecar"), int64(1))
	f.Add([]byte{}, int64(0))
	f.Fuzz(func(t *testing.T, raw []byte, blocks int64) {
		sums, dirty, err := decodeSums(raw, blocks)
		if err != nil {
			if sums != nil || dirty {
				t.Fatalf("decodeSums returned data alongside error %v", err)
			}
			return
		}
		if dirty {
			if sums != nil {
				t.Fatalf("dirty sidecar decoded with %d sums; want nil", len(sums))
			}
			return
		}
		if int64(len(sums)) != blocks {
			t.Fatalf("decoded %d sums for %d blocks", len(sums), blocks)
		}
		flags := binary.LittleEndian.Uint64(raw[8:])
		if enc := encodeSums(sums, flags); !bytes.Equal(enc, raw) {
			t.Fatalf("accepted sidecar does not round-trip:\n in:  %x\n out: %x", raw, enc)
		}
	})
}

// FuzzSumRoundTrip drives the encoder from arbitrary sums and checks
// decode(encode(x)) == x.
func FuzzSumRoundTrip(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, false)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, true)
	f.Fuzz(func(t *testing.T, sumBytes []byte, dirty bool) {
		sums := make([]uint32, len(sumBytes)/4)
		for i := range sums {
			sums[i] = binary.LittleEndian.Uint32(sumBytes[i*4:])
		}
		var flags uint64
		if dirty {
			flags = sumFlagDirty
		}
		raw := encodeSums(sums, flags)
		got, gotDirty, err := decodeSums(raw, int64(len(sums)))
		if err != nil {
			t.Fatalf("decode of freshly encoded sidecar failed: %v", err)
		}
		if gotDirty != dirty {
			t.Fatalf("dirty flag did not round-trip: wrote %v, read %v", dirty, gotDirty)
		}
		if !dirty {
			if len(got) != len(sums) {
				t.Fatalf("sum count did not round-trip: wrote %d, read %d", len(sums), len(got))
			}
			for i := range sums {
				if got[i] != sums[i] {
					t.Fatalf("sum %d did not round-trip: wrote %#x, read %#x", i, sums[i], got[i])
				}
			}
		}
	})
}

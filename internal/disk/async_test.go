package disk

import (
	"testing"

	"repro/internal/machine"
)

// plainArray hides a simArray's async capability to exercise the adapter.
type plainArray struct{ Array }

func TestAsAsyncCapabilityDetection(t *testing.T) {
	s := NewSim(machine.Small(1<<20).Disk, true)
	defer s.Close()
	a, err := s.Create("A", []int64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !IsAsync(a) {
		t.Fatal("Sim arrays should be natively async")
	}
	if aa := AsAsync(a); aa != a.(AsyncArray) {
		t.Fatal("AsAsync must return the native implementation unchanged")
	}
	wrapped := plainArray{a}
	if IsAsync(wrapped) {
		t.Fatal("plain wrapper must not be async")
	}
	if aa := AsAsync(wrapped); aa == nil {
		t.Fatal("AsAsync must adapt a synchronous array")
	}
	var be Backend = s
	ab, ok := be.(AsyncBackend)
	if !ok || !ab.AsyncCapable() {
		t.Fatal("Sim should advertise AsyncBackend")
	}
}

func TestSimAsyncRoundTripAndStats(t *testing.T) {
	d := machine.Small(1 << 20).Disk
	sync := NewSim(d, true)
	defer sync.Close()
	async := NewSim(d, true)
	defer async.Close()
	for _, s := range []*Sim{sync, async} {
		if _, err := s.Create("A", []int64{8, 8}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]float64, 16)
	for i := range buf {
		buf[i] = float64(i) + 0.5
	}
	lo, shape := []int64{2, 4}, []int64{4, 4}

	sa, _ := sync.Open("A")
	if err := sa.WriteSection(lo, shape, buf); err != nil {
		t.Fatal(err)
	}
	back := make([]float64, 16)
	if err := sa.ReadSection(lo, shape, back); err != nil {
		t.Fatal(err)
	}

	aaArr, _ := async.Open("A")
	aa := AsAsync(aaArr)
	if err := aa.WriteAsync(lo, shape, buf).Await(); err != nil {
		t.Fatal(err)
	}
	aback := make([]float64, 16)
	if err := aa.ReadAsync(lo, shape, aback).Await(); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != aback[i] {
			t.Fatalf("element %d: async %v != sync %v", i, aback[i], back[i])
		}
	}
	if sync.Stats() != async.Stats() {
		t.Fatalf("async stats %v != sync stats %v", async.Stats(), sync.Stats())
	}
	cs := async.ChannelStats()
	if cs.Ops != 2 {
		t.Fatalf("channel should have processed 2 ops, got %d", cs.Ops)
	}
	if cs.BusySeconds <= 0 {
		t.Fatal("channel busy time should be positive")
	}
}

func TestSimChannelOverlapsQueuedSeeks(t *testing.T) {
	d := machine.Small(1 << 20).Disk
	s := NewSim(d, false)
	defer s.Close()
	a, err := s.Create("A", []int64{1 << 10, 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	aa := AsAsync(a)
	const ops = 16
	cs := make([]Completion, 0, ops)
	lo := []int64{0, 0}
	shape := []int64{1 << 10, 1 << 10}
	for i := 0; i < ops; i++ {
		cs = append(cs, aa.ReadAsync(lo, shape, nil))
	}
	for _, c := range cs {
		if err := c.Await(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.ChannelStats()
	if st.Ops != ops {
		t.Fatalf("want %d ops, got %d", ops, st.Ops)
	}
	if st.QueuedOps == 0 {
		t.Fatal("back-to-back issues should queue behind the in-progress transfer")
	}
	serial := s.Stats().ReadTime // ops seeks + transfers, back to back
	if st.BusySeconds >= serial {
		t.Fatalf("overlapped channel time %.6f should beat serial %.6f (queued seeks overlap transfers)",
			st.BusySeconds, serial)
	}
	lower := serial - float64(ops)*d.SeekTime
	if st.BusySeconds < lower-1e-12 {
		t.Fatalf("channel busy %.6f below the all-seeks-hidden bound %.6f", st.BusySeconds, lower)
	}
}

func TestFileStoreAsyncRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir(), machine.Small(1<<20).Disk)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if !fs.AsyncCapable() {
		t.Fatal("FileStore should advertise async capability")
	}
	a, err := fs.Create("A", []int64{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	aa := AsAsync(a)
	if aa != a.(AsyncArray) {
		t.Fatal("FileStore arrays should be natively async")
	}
	buf := make([]float64, 9)
	for i := range buf {
		buf[i] = float64(i * i)
	}
	lo, shape := []int64{3, 0}, []int64{3, 3}
	if err := aa.WriteAsync(lo, shape, buf).Await(); err != nil {
		t.Fatal(err)
	}
	back := make([]float64, 9)
	if err := aa.ReadAsync(lo, shape, back).Await(); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if back[i] != buf[i] {
			t.Fatalf("element %d: got %v want %v", i, back[i], buf[i])
		}
	}
	// Errors surface through the completion.
	if err := aa.ReadAsync([]int64{5, 5}, []int64{3, 3}, back).Await(); err == nil {
		t.Fatal("out-of-bounds async read should fail")
	}
}

package disk

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// smallBlocks shrinks the checksum granularity so tiny test arrays span
// several blocks.
const smallBlocks = 8

// newTestStore builds a FileStore over a temp dir with small checksum
// blocks.
func newTestStore(t *testing.T) (*FileStore, string) {
	t.Helper()
	dir := t.TempDir()
	fs, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	fs.SetBlockElems(smallBlocks)
	return fs, dir
}

func seqFloats(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) + 0.5
	}
	return out
}

func TestFileStoreDRA2RoundTrip(t *testing.T) {
	fs, dir := newTestStore(t)
	a, err := fs.Create("A", []int64{6, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := seqFloats(30)
	if err := a.WriteSection([]int64{0, 0}, []int64{6, 5}, want); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 30)
	if err := a.ReadSection([]int64{0, 0}, []int64{6, 5}, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
	ic := fs.Integrity()
	if ic.VerifiedBlocks == 0 || ic.Detected != 0 {
		t.Fatalf("integrity counts %+v; want verification and no detections", ic)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory validates the manifest and
	// reads the same bytes back through the persisted checksum index.
	fs2, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	a2, err := fs2.Open("A")
	if err != nil {
		t.Fatal(err)
	}
	got2 := make([]float64, 30)
	if err := a2.ReadSection([]int64{0, 0}, []int64{6, 5}, got2); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("reopened mismatch at %d", i)
		}
	}
}

// corruptByte flips one payload byte of an array file on disk, beneath
// the live store.
func corruptByte(t *testing.T, dir, name string, elem int64, rank int) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, name+".dra"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := headerSize2(rank) + elem*8
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreDetectsCorruption(t *testing.T) {
	fs, dir := newTestStore(t)
	defer fs.Close()
	a, _ := fs.Create("A", []int64{4, 8})
	if err := a.WriteSection([]int64{0, 0}, []int64{4, 8}, seqFloats(32)); err != nil {
		t.Fatal(err)
	}
	corruptByte(t, dir, "A", 3, 2)

	err := a.ReadSection([]int64{0, 0}, []int64{4, 8}, make([]float64, 32))
	if err == nil {
		t.Fatal("corrupted read succeeded")
	}
	if !IsIntegrity(err) {
		t.Fatalf("error is not an integrity failure: %v", err)
	}
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("integrity failure not wrapped in IOError: %v", err)
	}
	if ioe.Transient() {
		t.Fatal("integrity failure must be non-retryable")
	}
	var ie *IntegrityError
	errors.As(err, &ie)
	if ie.Array != "A" || ie.Block != 0 || ie.Stored == ie.Computed {
		t.Fatalf("bad attribution: %+v", ie)
	}
	if ic := fs.Integrity(); ic.Detected == 0 {
		t.Fatalf("detection not counted: %+v", ic)
	}

	// The write path verifies covering blocks too (read-modify-verify):
	// a partial-block write over rot must not silently bless it.
	werr := a.WriteSection([]int64{0, 0}, []int64{1, 2}, []float64{1, 2})
	if !IsIntegrity(werr) {
		t.Fatalf("partial write over rot did not detect: %v", werr)
	}
}

func TestScrubDetectAndRepair(t *testing.T) {
	fs, dir := newTestStore(t)
	defer fs.Close()
	a, _ := fs.Create("A", []int64{4, 8})
	if err := a.WriteSection([]int64{0, 0}, []int64{4, 8}, seqFloats(32)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("B", []int64{3, 3}); err != nil {
		t.Fatal(err)
	}
	corruptByte(t, dir, "A", 10, 2)

	reg := obs.NewRegistry()
	rep, err := Scrub(fs, ScrubOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrays != 2 || rep.OK() || len(rep.Defects) != 1 {
		t.Fatalf("scrub report: %+v", rep)
	}
	d := rep.Defects[0]
	if d.Array != "A" || d.Block != 10/smallBlocks {
		t.Fatalf("defect attribution: %+v", d)
	}
	if got := reg.Snapshot().Counters[MetricScrubDefects]; got != 1 {
		t.Fatalf("scrub defect counter = %d", got)
	}

	rep2, err := Scrub(fs, ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Repaired != 1 {
		t.Fatalf("repair report: %+v", rep2)
	}
	rep3, err := Scrub(fs, ScrubOptions{})
	if err != nil || !rep3.OK() {
		t.Fatalf("post-repair scrub not clean: %+v, %v", rep3, err)
	}
	// Reads now accept the repaired (blessed) contents.
	if err := a.ReadSection([]int64{0, 0}, []int64{4, 8}, make([]float64, 32)); err != nil {
		t.Fatalf("post-repair read: %v", err)
	}
}

// writeLegacyDRA1 handcrafts a pre-checksum DRA1 file with zero data.
func writeLegacyDRA1(t *testing.T, dir, name string, dims []int64) {
	t.Helper()
	rank := len(dims)
	n := int64(1)
	hdr := make([]byte, headerSize(rank))
	copy(hdr, draMagic[:])
	putLE(hdr[8:], int64(rank))
	for i, d := range dims {
		putLE(hdr[16+i*8:], d)
		n *= d
	}
	raw := append(hdr, make([]byte, n*8)...)
	if err := os.WriteFile(filepath.Join(dir, name+".dra"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func putLE(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}

func TestDRA1Migration(t *testing.T) {
	dir := t.TempDir()
	writeLegacyDRA1(t, dir, "L", []int64{6, 4})

	fs, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	fs.SetBlockElems(smallBlocks)
	a, err := fs.Open("L")
	if err != nil {
		t.Fatalf("open legacy: %v", err)
	}
	// Reads verify against the index rebuilt from the legacy contents.
	if err := a.ReadSection([]int64{0, 0}, []int64{6, 4}, make([]float64, 24)); err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	// Writes work in place; the file keeps its DRA1 header, checksums
	// live in the sidecar, and Sync adopts it into the manifest.
	if err := a.WriteSection([]int64{1, 0}, []int64{2, 4}, seqFloats(8)); err != nil {
		t.Fatalf("legacy write: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after migration: %v", err)
	}
	if ent, ok := m.Arrays["L"]; !ok || ent.Format != formatDRA1 {
		t.Fatalf("legacy array not adopted: %+v", m.Arrays)
	}

	fs2, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	a2, err := fs2.Open("L")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 8)
	if err := a2.ReadSection([]int64{1, 0}, []int64{2, 4}, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.5 {
		t.Fatalf("legacy data lost: %v", got)
	}
	// Corruption in a migrated file is detected like any other.
	corrupt := filepath.Join(dir, "L.dra")
	raw, _ := os.ReadFile(corrupt)
	raw[headerSize(2)+5*8] ^= 1
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a2.ReadSection([]int64{0, 0}, []int64{6, 4}, make([]float64, 24)); !IsIntegrity(err) {
		t.Fatalf("legacy corruption not detected: %v", err)
	}
}

func TestFileStoreReopen(t *testing.T) {
	fs, _ := newTestStore(t)
	a, _ := fs.Create("A", []int64{4, 4})
	if err := a.WriteSection([]int64{0, 0}, []int64{4, 4}, seqFloats(16)); err != nil {
		t.Fatal(err)
	}
	if err := a.ReadSection([]int64{0, 0}, []int64{4, 4}, make([]float64, 16)); err != nil {
		t.Fatal(err)
	}
	before := fs.Integrity()
	if before.VerifiedBlocks == 0 {
		t.Fatal("no verification before reopen")
	}

	be, err := fs.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	nfs, ok := be.(*FileStore)
	if !ok || nfs == fs {
		t.Fatalf("Reopen returned %T (same=%v)", be, nfs == fs)
	}
	defer nfs.Close()
	// Old handles are closed; the new store opens fresh ones.
	a2, err := nfs.Open("A")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 16)
	if err := a2.ReadSection([]int64{0, 0}, []int64{4, 4}, got); err != nil {
		t.Fatal(err)
	}
	if got[15] != 15.5 {
		t.Fatalf("data lost across reopen: %v", got)
	}
	// Lifetime integrity counters survive the reopen.
	after := nfs.Integrity()
	if after.VerifiedBlocks <= before.VerifiedBlocks {
		t.Fatalf("integrity counters not carried: %+v -> %+v", before, after)
	}
}

// TestDirtyEpochCrashRecovery kills a store (by abandoning it without
// Close) mid-epoch and checks that a fresh store over the surviving
// files rebuilds the index from content instead of trusting the stale
// sidecar: no false detections, scrub clean.
func TestDirtyEpochCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	fs.SetBlockElems(smallBlocks)
	a, _ := fs.Create("A", []int64{4, 8})
	if err := a.WriteSection([]int64{0, 0}, []int64{4, 8}, seqFloats(32)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// New epoch: the dirty marker is persisted before the data mutates,
	// then the process "dies" — no Sync, no Close.
	if err := a.WriteSection([]int64{0, 0}, []int64{2, 8}, seqFloats(16)); err != nil {
		t.Fatal(err)
	}

	fs2, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	a2, err := fs2.Open("A")
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.ReadSection([]int64{0, 0}, []int64{4, 8}, make([]float64, 32)); err != nil {
		t.Fatalf("post-crash read tripped on stale index: %v", err)
	}
	rep, err := Scrub(fs2, ScrubOptions{})
	if err != nil || !rep.OK() {
		t.Fatalf("post-crash scrub: %+v, %v", rep, err)
	}
}

func TestManifestValidation(t *testing.T) {
	fs, dir := newTestStore(t)
	if _, err := fs.Create("A", []int64{4, 4}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Manifest disagreeing with the file's self-describing header: the
	// listed DRA2 array has been replaced by a legacy DRA1 file.
	if err := os.Remove(filepath.Join(dir, "A.dra")); err != nil {
		t.Fatal(err)
	}
	writeLegacyDRA1(t, dir, "A", []int64{4, 4})
	if _, err := NewFileStore(dir, testDisk()); err == nil {
		t.Fatal("format disagreement not caught")
	}
	// A listed file deleted out-of-band is array removal, not corruption:
	// the store opens, prunes the entry, and the name is free to
	// re-create (re-running a saved plan deletes its outputs first).
	if err := os.Remove(filepath.Join(dir, "A.dra")); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatalf("out-of-band deletion bricked the store: %v", err)
	}
	defer fs2.Close()
	if _, err := fs2.Open("A"); err == nil {
		t.Fatal("pruned array still opens")
	}
	if _, err := fs2.Create("A", []int64{4, 4}); err != nil {
		t.Fatalf("pruned name not re-creatable: %v", err)
	}
	m, err := loadManifest(dir)
	if err != nil || m == nil {
		t.Fatalf("manifest after prune+recreate: %v", err)
	}
	if ent, ok := m.Arrays["A"]; !ok || ent.Format != formatDRA2 {
		t.Fatalf("recreated array not listed: %+v", m.Arrays)
	}
}

func TestSidecarCorruptionRejected(t *testing.T) {
	fs, dir := newTestStore(t)
	a, _ := fs.Create("A", []int64{4, 4})
	if err := a.WriteSection([]int64{0, 0}, []int64{4, 4}, seqFloats(16)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	side := filepath.Join(dir, "A.sum")
	raw, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // trailer CRC mismatch
	if err := os.WriteFile(side, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir, testDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if _, err := fs2.Open("A"); err == nil {
		t.Fatal("corrupt sidecar accepted")
	}
}

func TestSimShadowChecksums(t *testing.T) {
	s := NewSim(testDisk(), true)
	s.SetBlockElems(smallBlocks)
	a, _ := s.Create("A", []int64{4, 8})
	if err := a.WriteSection([]int64{0, 0}, []int64{4, 8}, seqFloats(32)); err != nil {
		t.Fatal(err)
	}
	fl, ok := a.(BitFlipper)
	if !ok {
		t.Fatal("sim array is not a BitFlipper")
	}
	if err := fl.FlipBit(5, 3); err != nil {
		t.Fatal(err)
	}
	err := a.ReadSection([]int64{0, 0}, []int64{4, 8}, make([]float64, 32))
	if !IsIntegrity(err) {
		t.Fatalf("sim missed bit rot: %v", err)
	}
	if ic := s.Integrity(); ic.Detected == 0 {
		t.Fatalf("sim detection not counted: %+v", ic)
	}
	rep, err := Scrub(s, ScrubOptions{Repair: true})
	if err != nil || rep.OK() || rep.Repaired == 0 {
		t.Fatalf("sim scrub repair: %+v, %v", rep, err)
	}
	if err := a.ReadSection([]int64{0, 0}, []int64{4, 8}, make([]float64, 32)); err != nil {
		t.Fatalf("post-repair sim read: %v", err)
	}
}

func TestSimCostOnlyPoison(t *testing.T) {
	s := NewSim(testDisk(), false)
	s.SetBlockElems(smallBlocks)
	a, _ := s.Create("A", []int64{4, 8})
	if err := a.WriteSection([]int64{0, 0}, []int64{4, 8}, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.(BitFlipper).FlipBit(9, 0); err != nil {
		t.Fatal(err)
	}
	err := a.ReadSection([]int64{0, 0}, []int64{4, 8}, nil)
	if !IsIntegrity(err) {
		t.Fatalf("cost-only sim missed poison: %v", err)
	}
	rep, err := Scrub(s, ScrubOptions{Repair: true})
	if err != nil || len(rep.Defects) != 1 {
		t.Fatalf("cost-only scrub: %+v, %v", rep, err)
	}
	if err := a.ReadSection([]int64{0, 0}, []int64{4, 8}, nil); err != nil {
		t.Fatalf("post-repair cost-only read: %v", err)
	}
}

func TestSilentWriteModesDetected(t *testing.T) {
	backends := map[string]Backend{
		"sim": func() Backend {
			s := NewSim(testDisk(), true)
			s.SetBlockElems(smallBlocks)
			return s
		}(),
	}
	fs, _ := newTestStore(t)
	backends["file"] = fs
	for name, be := range backends {
		for _, mode := range []SilentMode{SilentLost, SilentTorn} {
			aname := "A"
			if mode == SilentTorn {
				aname = "B"
			}
			a, err := be.Create(aname, []int64{4, 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.WriteSection([]int64{0, 0}, []int64{4, 8}, seqFloats(32)); err != nil {
				t.Fatal(err)
			}
			// The lying write: acknowledged and indexed, data not (fully)
			// persisted.
			vals := make([]float64, 32)
			for i := range vals {
				vals[i] = -float64(i) - 1
			}
			sw, ok := a.(SilentWriter)
			if !ok {
				t.Fatalf("%s array is not a SilentWriter", name)
			}
			if err := sw.WriteSectionSilent([]int64{0, 0}, []int64{4, 8}, vals, mode); err != nil {
				t.Fatal(err)
			}
			err = a.ReadSection([]int64{0, 0}, []int64{4, 8}, make([]float64, 32))
			if !IsIntegrity(err) {
				t.Fatalf("%s mode %d: silent corruption not detected: %v", name, mode, err)
			}
		}
	}
}

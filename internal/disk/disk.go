// Package disk provides the disk-resident array substrate the generated
// out-of-core code runs against: named multi-dimensional arrays on
// secondary storage accessed by hyper-rectangular sections (the unit of
// I/O, mirroring the Disk Resident Arrays abstraction the paper's
// generated code uses). Two backends are provided: a simulator that
// charges the machine's I/O cost model (usable at paper scale, with or
// without backing data) and a real file-backed store for small-scale
// integration tests.
//
// The contract is split into an explicit sync/async pair: Backend/Array
// are the synchronous baseline, AsyncArray/AsyncBackend (async.go) add
// completion-handle section I/O for the pipelined execution engine, and
// AsAsync upgrades any array with capability detection, so wrappers need
// not assume either contract.
package disk

import (
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Stats accumulates I/O activity and modelled time.
type Stats struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
	// ReadTime and WriteTime are modelled seconds under the backend's disk
	// parameters.
	ReadTime  float64
	WriteTime float64
}

// Time returns total modelled I/O seconds.
func (s Stats) Time() float64 { return s.ReadTime + s.WriteTime }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ReadOps += other.ReadOps
	s.WriteOps += other.WriteOps
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.ReadTime += other.ReadTime
	s.WriteTime += other.WriteTime
}

func (s Stats) String() string {
	return fmt.Sprintf("reads %d ops/%d B (%.2f s), writes %d ops/%d B (%.2f s)",
		s.ReadOps, s.BytesRead, s.ReadTime, s.WriteOps, s.BytesWritten, s.WriteTime)
}

// Array is a disk-resident array accessed by sections.
type Array interface {
	// Name returns the array's identifier.
	Name() string
	// Dims returns the array's extents.
	Dims() []int64
	// ReadSection reads the hyper-rectangle [lo, lo+shape) into buf
	// (row-major, length Π shape). buf may be nil for cost-only backends.
	ReadSection(lo, shape []int64, buf []float64) error
	// WriteSection writes buf into the hyper-rectangle [lo, lo+shape).
	WriteSection(lo, shape []int64, buf []float64) error
}

// Backend creates and opens disk-resident arrays and accumulates I/O
// statistics.
type Backend interface {
	Create(name string, dims []int64) (Array, error)
	Open(name string) (Array, error)
	Stats() Stats
	// ResetStats zeroes the counters (e.g. after loading inputs, so that
	// measurements cover only the computation).
	ResetStats()
	Close() error
}

// checkSection validates a section against array dims and returns the
// element count.
func checkSection(dims, lo, shape []int64) (int64, error) {
	if len(lo) != len(dims) || len(shape) != len(dims) {
		return 0, fmt.Errorf("disk: section rank %d/%d does not match array rank %d", len(lo), len(shape), len(dims))
	}
	n := int64(1)
	for i := range dims {
		if lo[i] < 0 || shape[i] <= 0 || lo[i]+shape[i] > dims[i] {
			return 0, fmt.Errorf("disk: section lo=%v shape=%v out of bounds for dims %v", lo, shape, dims)
		}
		n *= shape[i]
	}
	return n, nil
}

// MetricsSetter is implemented by backends that can publish their I/O
// accounting into an obs.Registry alongside the Stats struct.
type MetricsSetter interface {
	// SetMetrics attaches the registry. Pass nil to detach.
	SetMetrics(*obs.Registry)
}

// AttachMetrics attaches reg to the backend if it supports metrics
// publishing, reporting whether it did. Wrapping backends (e.g.
// trace.Recorder) implement MetricsSetter by forwarding to their inner
// backend.
func AttachMetrics(be Backend, reg *obs.Registry) bool {
	if ms, ok := be.(MetricsSetter); ok {
		ms.SetMetrics(reg)
		return true
	}
	return false
}

// Metric names published by the backends. Per-array variants append
// "/<array name>".
const (
	MetricReadOps    = "disk.read.ops"
	MetricReadBytes  = "disk.read.bytes"
	MetricWriteOps   = "disk.write.ops"
	MetricWriteBytes = "disk.write.bytes"
)

// statsLocked wraps Stats with a mutex shared by a backend's arrays, and
// optionally mirrors every charge into an attached metrics registry. The
// backend owns the instruments it created: reset() zeroes only those, so
// a shared registry's other producers (solver, engine) are untouched by a
// backend's ResetStats.
type statsLocked struct {
	mu    sync.Mutex
	s     Stats
	d     machine.Disk
	integ IntegrityCounts
	reg   *obs.Registry
	owned map[string]*obs.Counter
}

// setMetrics attaches (or, with nil, detaches) a registry.
func (sl *statsLocked) setMetrics(reg *obs.Registry) {
	sl.mu.Lock()
	sl.reg = reg
	sl.owned = nil
	if reg != nil {
		sl.owned = map[string]*obs.Counter{}
	}
	sl.mu.Unlock()
}

// counterLocked returns the named counter, remembering it as owned by
// this backend. Callers hold sl.mu.
func (sl *statsLocked) counterLocked(name string) *obs.Counter {
	c := sl.owned[name]
	if c == nil {
		c = sl.reg.Counter(name)
		sl.owned[name] = c
	}
	return c
}

func (sl *statsLocked) chargeRead(array string, bytes int64) {
	sl.mu.Lock()
	sl.s.ReadOps++
	sl.s.BytesRead += bytes
	sl.s.ReadTime += sl.d.ReadTime(bytes, 1)
	if sl.reg != nil {
		sl.counterLocked(MetricReadOps).Inc()
		sl.counterLocked(MetricReadBytes).Add(bytes)
		sl.counterLocked(MetricReadOps + "/" + array).Inc()
		sl.counterLocked(MetricReadBytes + "/" + array).Add(bytes)
	}
	sl.mu.Unlock()
}

func (sl *statsLocked) chargeWrite(array string, bytes int64) {
	sl.mu.Lock()
	sl.s.WriteOps++
	sl.s.BytesWritten += bytes
	sl.s.WriteTime += sl.d.WriteTime(bytes, 1)
	if sl.reg != nil {
		sl.counterLocked(MetricWriteOps).Inc()
		sl.counterLocked(MetricWriteBytes).Add(bytes)
		sl.counterLocked(MetricWriteOps + "/" + array).Inc()
		sl.counterLocked(MetricWriteBytes + "/" + array).Add(bytes)
	}
	sl.mu.Unlock()
}

// chargeVerify accounts block checksum verifications on a section read.
// Integrity tallies are lifetime counters: unlike the I/O charges they
// survive reset(), because recovery restarts ResetStats per attempt but
// corruption accounting must span the whole resilient run. For the same
// reason the registry mirrors are not backend-owned instruments.
func (sl *statsLocked) chargeVerify(array string, blocks int64) {
	if blocks <= 0 {
		return
	}
	sl.mu.Lock()
	sl.integ.VerifiedBlocks += blocks
	reg := sl.reg
	sl.mu.Unlock()
	if reg != nil {
		reg.Counter(MetricIntegrityBlocks).Add(blocks)
		reg.Counter(MetricIntegrityBlocks + "/" + array).Add(blocks)
	}
}

// chargeDetect accounts blocks that failed checksum verification; like
// chargeVerify it survives reset().
func (sl *statsLocked) chargeDetect(array string, blocks int64) {
	if blocks <= 0 {
		return
	}
	sl.mu.Lock()
	sl.integ.Detected += blocks
	reg := sl.reg
	sl.mu.Unlock()
	if reg != nil {
		reg.Counter(MetricIntegrityDetected).Add(blocks)
		reg.Counter(MetricIntegrityDetected + "/" + array).Add(blocks)
	}
}

// integSnapshot copies the integrity tallies.
func (sl *statsLocked) integSnapshot() IntegrityCounts {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.integ
}

func (sl *statsLocked) snapshot() Stats {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.s
}

// reset zeroes the Stats and this backend's own registry instruments —
// mirroring ResetStats semantics into the metrics view.
func (sl *statsLocked) reset() {
	sl.mu.Lock()
	sl.s = Stats{}
	for _, c := range sl.owned {
		c.Reset()
	}
	sl.mu.Unlock()
}

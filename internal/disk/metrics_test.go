package disk

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
)

// TestMetricsMirrorStats drives both backends with a registry attached
// and asserts the counters equal the Stats struct, totals and per-array.
func TestMetricsMirrorStats(t *testing.T) {
	d := machine.Small(1 << 20).Disk
	fileBE, err := NewFileStore(t.TempDir(), d)
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]Backend{
		"sim":  NewSim(d, true),
		"file": fileBE,
	}
	for name, be := range backends {
		t.Run(name, func(t *testing.T) {
			defer be.Close()
			reg := obs.NewRegistry()
			if !AttachMetrics(be, reg) {
				t.Fatal("backend does not support metrics")
			}
			a, err := be.Create("A", []int64{4, 6})
			if err != nil {
				t.Fatal(err)
			}
			b, err := be.Create("B", []int64{8})
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]float64, 24)
			if err := a.WriteSection([]int64{0, 0}, []int64{4, 6}, buf); err != nil {
				t.Fatal(err)
			}
			if err := a.ReadSection([]int64{0, 0}, []int64{2, 6}, buf[:12]); err != nil {
				t.Fatal(err)
			}
			if err := b.ReadSection([]int64{0}, []int64{8}, buf[:8]); err != nil {
				t.Fatal(err)
			}

			st := be.Stats()
			snap := reg.Snapshot()
			if got := snap.Counters[MetricReadBytes]; got != st.BytesRead {
				t.Errorf("read bytes metric = %d, stats = %d", got, st.BytesRead)
			}
			if got := snap.Counters[MetricWriteBytes]; got != st.BytesWritten {
				t.Errorf("write bytes metric = %d, stats = %d", got, st.BytesWritten)
			}
			if got := snap.Counters[MetricReadOps]; got != st.ReadOps {
				t.Errorf("read ops metric = %d, stats = %d", got, st.ReadOps)
			}
			if got := snap.Counters[MetricWriteOps]; got != st.WriteOps {
				t.Errorf("write ops metric = %d, stats = %d", got, st.WriteOps)
			}
			if got := snap.Counters[MetricReadBytes+"/A"]; got != 12*8 {
				t.Errorf("per-array read bytes for A = %d, want %d", got, 12*8)
			}
			if got := snap.Counters[MetricReadBytes+"/B"]; got != 8*8 {
				t.Errorf("per-array read bytes for B = %d, want %d", got, 8*8)
			}

			// ResetStats must zero this backend's instruments but leave
			// other producers in the shared registry alone.
			other := reg.Counter("dcs.evals")
			other.Add(7)
			be.ResetStats()
			snap = reg.Snapshot()
			if got := snap.Counters[MetricReadBytes]; got != 0 {
				t.Errorf("read bytes after reset = %d, want 0", got)
			}
			if got := snap.Counters[MetricReadBytes+"/A"]; got != 0 {
				t.Errorf("per-array read bytes after reset = %d, want 0", got)
			}
			if got := snap.Counters["dcs.evals"]; got != 7 {
				t.Errorf("foreign counter clobbered by backend reset: %d", got)
			}

			// Charges after a reset keep mirroring.
			if err := b.ReadSection([]int64{0}, []int64{4}, buf[:4]); err != nil {
				t.Fatal(err)
			}
			if got := reg.Counter(MetricReadBytes).Value(); got != 4*8 {
				t.Errorf("read bytes after reset+read = %d, want %d", got, 4*8)
			}
			if got, want := reg.Counter(MetricReadBytes).Value(), be.Stats().BytesRead; got != want {
				t.Errorf("metric %d != stats %d after reset", got, want)
			}
		})
	}
}

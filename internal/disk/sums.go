package disk

// Pure encode/decode for the DRA2 checksum sidecar, split out of the
// fileArray I/O paths so the wire format can be fuzzed and
// round-trip-tested without touching a filesystem.
//
// Layout (all little-endian):
//
//	[0:8)   magic "DRS2\0\0\0\0"
//	[8:16)  flags (sumFlagDirty marks a dirty-epoch marker)
//	[16:24) block count
//	[24:..) one CRC32-C per block
//	[..:+4) CRC32-C of the per-block sums region

import (
	"encoding/binary"
	"errors"
)

// errSumCorrupt reports a structurally invalid sidecar. Callers wrap
// it with the array name; the atomic replacement discipline never
// produces one, so it always means external damage.
var errSumCorrupt = errors.New("checksum sidecar is corrupt")

// encodeSums renders a checksum sidecar.
func encodeSums(sums []uint32, flags uint64) []byte {
	raw := make([]byte, 8+8+8+len(sums)*4+4)
	copy(raw, sumMagic[:])
	binary.LittleEndian.PutUint64(raw[8:], flags)
	binary.LittleEndian.PutUint64(raw[16:], uint64(len(sums)))
	for i, s := range sums {
		binary.LittleEndian.PutUint32(raw[24+i*4:], s)
	}
	body := raw[24 : 24+len(sums)*4]
	binary.LittleEndian.PutUint32(raw[24+len(sums)*4:], crcBytes(body))
	return raw
}

// decodeSums parses a sidecar expected to cover blocks blocks. A
// dirty-epoch marker decodes as dirty=true with nil sums (the index
// must be rebuilt from data); any structural mismatch — wrong length,
// wrong magic, wrong stored count, bad region CRC — is errSumCorrupt.
func decodeSums(raw []byte, blocks int64) (sums []uint32, dirty bool, err error) {
	if blocks < 0 {
		return nil, false, errSumCorrupt
	}
	want := 8 + 8 + 8 + int(blocks)*4 + 4
	if int64(want) != 8+8+8+blocks*4+4 || len(raw) != want || [8]byte(raw[:8]) != sumMagic {
		return nil, false, errSumCorrupt
	}
	if binary.LittleEndian.Uint64(raw[16:]) != uint64(blocks) {
		return nil, false, errSumCorrupt
	}
	body := raw[24 : 24+blocks*4]
	if crcBytes(body) != binary.LittleEndian.Uint32(raw[24+blocks*4:]) {
		return nil, false, errSumCorrupt
	}
	if binary.LittleEndian.Uint64(raw[8:])&sumFlagDirty != 0 {
		return nil, true, nil
	}
	sums = make([]uint32, blocks)
	for i := range sums {
		sums[i] = binary.LittleEndian.Uint32(body[i*4:])
	}
	return sums, false, nil
}

package disk

import (
	"context"
	"math"
	"time"
)

// RetryPolicy controls how the executor retries transient section-I/O
// faults: capped exponential backoff with deterministic jitter. Delays
// are expressed in modelled seconds so retried I/O reconciles with
// Stats.Time() and the trace timeline; set WallClock to additionally
// sleep for real (useful against genuinely flaky storage, pointless
// against the simulator).
//
// The zero value is not useful; use DefaultRetryPolicy() or fill the
// fields explicitly. A nil *RetryPolicy means "no retries".
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation
	// (first attempt + retries). Values < 1 mean 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry, in modelled
	// seconds. Doubles each retry.
	BaseDelay float64
	// MaxDelay caps the exponential growth, in modelled seconds.
	// <= 0 means uncapped.
	MaxDelay float64
	// Jitter in [0,1] scales each delay uniformly into
	// [delay*(1-Jitter), delay], deterministically from Seed and
	// the retry's sequence key.
	Jitter float64
	// Seed makes jitter reproducible across runs.
	Seed uint64
	// WallClock additionally sleeps for the modelled delay in real
	// time, honouring context cancellation.
	WallClock bool
	// PerArray overrides the policy for specific arrays by name.
	// An override applies wholesale (no field merging).
	PerArray map[string]*RetryPolicy
}

// DefaultRetryPolicy is tuned for transient-fault injection: four
// attempts with 1ms modelled base delay capped at 50ms.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: 1e-3, MaxDelay: 5e-2, Jitter: 0.5}
}

// ForArray resolves the effective policy for the named array. Safe on
// a nil receiver (returns nil: no retries).
func (p *RetryPolicy) ForArray(name string) *RetryPolicy {
	if p == nil {
		return nil
	}
	if o, ok := p.PerArray[name]; ok {
		return o
	}
	return p
}

// Attempts returns the total tries allowed per operation, at least 1.
// Safe on a nil receiver.
func (p *RetryPolicy) Attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the modelled backoff before retry number attempt
// (0-based: attempt 0 is the delay after the first failure). key salts
// the deterministic jitter so distinct operations do not back off in
// lockstep.
func (p *RetryPolicy) Delay(attempt int, key uint64) float64 {
	if p == nil || p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay * math.Pow(2, float64(attempt))
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		frac := hashFrac(p.Seed ^ key ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
		d *= 1 - j*frac
	}
	return d
}

// Sleep waits the given modelled delay in wall-clock time, returning
// early with the context's error if it is cancelled. Only called when
// WallClock is set.
func (p *RetryPolicy) Sleep(ctx context.Context, delay float64) error {
	if delay <= 0 {
		return nil
	}
	t := time.NewTimer(time.Duration(delay * float64(time.Second)))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// hashFrac maps x to a uniform float64 in [0,1) via splitmix64.
func hashFrac(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}

package disk

import "sync"

// This file splits the backend contract into an explicit sync/async pair.
// Backend and Array (disk.go) remain the synchronous contract every
// consumer can rely on; AsyncArray adds non-blocking section I/O returning
// completion handles, which is what the pipelined execution engine
// (internal/exec) uses to overlap a tile's disk traffic with the previous
// tile's compute. Capability is detected, never assumed: AsAsync upgrades
// any Array, using the native implementation when the backend has one
// (Sim's I/O-channel worker, FileStore's worker pool, ga's concurrent
// collectives) and a goroutine adapter otherwise, so wrappers such as
// trace.Recorder compose with either kind transparently.

// Completion is the handle of one asynchronous section operation.
type Completion interface {
	// Await blocks until the operation finishes and returns its error.
	// Await may be called at most once per handle.
	Await() error
}

// AsyncArray is an Array whose sections can also be moved asynchronously.
// The caller owns ordering: overlapping-section operations must be
// serialized by awaiting the earlier handle first (the execution engine's
// hazard tracking does exactly this).
type AsyncArray interface {
	Array
	// ReadAsync starts reading [lo, lo+shape) into buf and returns a
	// completion handle. buf must stay untouched until Await returns.
	ReadAsync(lo, shape []int64, buf []float64) Completion
	// WriteAsync starts writing buf into [lo, lo+shape).
	WriteAsync(lo, shape []int64, buf []float64) Completion
}

// AsyncBackend marks a backend whose arrays natively implement
// AsyncArray. It carries no extra methods: the async capability lives on
// the arrays; the marker lets callers decide up front whether Create/Open
// results can be asserted to AsyncArray without per-array probing.
type AsyncBackend interface {
	Backend
	// AsyncCapable reports whether arrays from this backend implement
	// AsyncArray natively.
	AsyncCapable() bool
}

// AsAsync returns an asynchronous view of the array: the array itself
// when it implements AsyncArray natively, otherwise a goroutine-backed
// adapter over the synchronous contract. The adapter preserves the
// backend's statistics and data semantics; it merely moves the blocking
// call off the caller's goroutine.
func AsAsync(a Array) AsyncArray {
	if aa, ok := a.(AsyncArray); ok {
		return aa
	}
	return &goAsyncArray{Array: a}
}

// IsAsync reports whether the array is natively asynchronous (no adapter
// needed).
func IsAsync(a Array) bool {
	_, ok := a.(AsyncArray)
	return ok
}

// completion is the shared Completion implementation.
type completion struct {
	done chan struct{}
	err  error
}

func newCompletion() *completion { return &completion{done: make(chan struct{})} }

func (c *completion) finish(err error) {
	c.err = err
	close(c.done)
}

func (c *completion) Await() error {
	<-c.done
	return c.err
}

// Go runs fn on its own goroutine and returns a completion handle — the
// building block for backends that implement AsyncArray by delegating to
// an internally concurrent synchronous path (ga's collectives).
func Go(fn func() error) Completion {
	c := newCompletion()
	go func() { c.finish(fn()) }()
	return c
}

// goAsyncArray adapts a synchronous Array with one goroutine per
// operation. The pipelined engine bounds in-flight operations, so the
// adapter needs no pool of its own.
type goAsyncArray struct {
	Array
}

func (g *goAsyncArray) ReadAsync(lo, shape []int64, buf []float64) Completion {
	c := newCompletion()
	go func() { c.finish(g.Array.ReadSection(lo, shape, buf)) }()
	return c
}

func (g *goAsyncArray) WriteAsync(lo, shape []int64, buf []float64) Completion {
	c := newCompletion()
	go func() { c.finish(g.Array.WriteSection(lo, shape, buf)) }()
	return c
}

// ioPool is a bounded worker pool shared by a backend's asynchronous
// arrays (FileStore uses it; Sim uses the single-channel variant below).
type ioPool struct {
	tasks chan ioTask
	once  sync.Once
	size  int
}

type ioTask struct {
	run func() error
	c   *completion
}

func newIOPool(size int) *ioPool {
	if size < 1 {
		size = 1
	}
	return &ioPool{size: size}
}

func (p *ioPool) submit(run func() error) *completion {
	p.once.Do(func() {
		tasks := make(chan ioTask)
		p.tasks = tasks
		for i := 0; i < p.size; i++ {
			// Workers range over the local channel: close() nils the
			// field and must not race their receives.
			go func() {
				for t := range tasks {
					t.c.finish(t.run())
				}
			}()
		}
	})
	c := newCompletion()
	p.tasks <- ioTask{run: run, c: c}
	return c
}

// close stops the workers after the queue drains. Pending submissions
// must have completed (the engine drains at barriers before Close).
func (p *ioPool) close() {
	if p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
}

// Package cliutil holds the small parsing helpers shared by the command
// line tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/machine"
)

// ParseBytes parses human-friendly sizes: "2g", "512m", "64k", "1000",
// "1.5g".
func ParseBytes(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult, s = machine.GB, strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		mult, s = machine.MB, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = machine.KB, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("cliutil: bad size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// ParseInts parses a comma-separated list of positive integers.
func ParseInts(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("cliutil: bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

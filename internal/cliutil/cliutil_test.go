package cliutil

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"2g":   2 * machine.GB,
		"1.5G": machine.GB + machine.GB/2,
		"512m": 512 * machine.MB,
		"64K":  64 * machine.KB,
		"1000": 1000,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "zz", "-1g", "0"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) should fail", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 8 {
		t.Fatalf("ParseInts = %v", got)
	}
	for _, bad := range []string{"", "a", "1,-2", "1,,2"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) should fail", bad)
		}
	}
}

func TestObsLifecycle(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterObsOn(fs)
	if err := fs.Parse([]string{
		"-trace-out", filepath.Join(dir, "t.json"),
		"-metrics-out", filepath.Join(dir, "m.json"),
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"),
		"-memprofile", filepath.Join(dir, "mem.pprof"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if o.Tracer() == nil || o.Registry() == nil {
		t.Fatal("sinks not allocated")
	}
	o.Tracer().Span(obs.Span{Track: obs.TrackDisk, Name: "R A", Start: 0, Dur: 1})
	o.Registry().Counter("disk.read.ops").Inc()
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "t.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace output holds no events")
	}
	raw, err = os.ReadFile(filepath.Join(dir, "m.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	if snap.Counters["disk.read.ops"] != 1 {
		t.Fatalf("metrics snapshot = %+v", snap)
	}
	for _, p := range []string{"cpu.pprof", "mem.pprof"} {
		st, err := os.Stat(filepath.Join(dir, p))
		if err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

func TestObsFinishWithoutStart(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterObsOn(fs)
	if err := o.Finish(); err != nil {
		t.Fatalf("Finish without Start: %v", err)
	}
}

func TestVersionString(t *testing.T) {
	if VersionString() == "" {
		t.Fatal("empty version string")
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	show := VersionFlagOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	show() // flag unset: must not exit
}

func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=7, rate=0.05,torn=0.02,latency=0.01,latsec=0.005,persistent=200,persistentops=3,maxconsec=4")
	if err != nil {
		t.Fatal(err)
	}
	want := fault.Config{
		Seed: 7, Rate: 0.05, TornRate: 0.02,
		LatencyRate: 0.01, LatencySeconds: 0.005,
		MaxConsecutive: 4, PersistentAfter: 200, PersistentOps: 3,
	}
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}
	// fault.Config.String round-trips through the parser.
	back, err := ParseFaultSpec(cfg.String())
	if err != nil || back != cfg {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
	if _, err := ParseFaultSpec("seed=1"); err != nil {
		t.Fatalf("single key: %v", err)
	}
	for _, bad := range []string{
		"", "rate", "rate=1.5", "rate=-0.1", "torn=2", "latency=x",
		"latsec=-1", "bogus=1", "seed=-3",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q did not fail", bad)
		} else if !strings.HasPrefix(err.Error(), "cliutil: ") {
			t.Fatalf("spec %q error lacks attribution: %v", bad, err)
		}
	}
}

func TestParseFaultSpecSilent(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=9,rate=0.01,bitflip=0.02,lost=0.03,silenttorn=0.04")
	if err != nil {
		t.Fatal(err)
	}
	want := fault.Config{Seed: 9, Rate: 0.01, BitFlipRate: 0.02, LostRate: 0.03, SilentTornRate: 0.04}
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}
	for _, bad := range []string{"bitflip=1.5", "lost=-0.1", "silenttorn=x"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q did not fail", bad)
		}
	}
}

func TestParseFaultSpecShard(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=7,rate=0.1,shard=2")
	if err != nil {
		t.Fatal(err)
	}
	// The spec key is the 0-based shard index; Config stores index+1 so
	// the zero value keeps targeting every shard.
	if cfg.Shard != 3 {
		t.Fatalf("shard=2 parsed to Shard=%d, want 3", cfg.Shard)
	}
	if !cfg.TargetsShard(2) || cfg.TargetsShard(1) || cfg.TargetsShard(3) {
		t.Fatalf("Shard=%d targets wrong shards", cfg.Shard)
	}
	var all fault.Config
	for _, i := range []int{0, 1, 7} {
		if !all.TargetsShard(i) {
			t.Fatalf("zero-value config must target shard %d", i)
		}
	}
	// shard=0 is a real restriction to the first shard, not "untargeted".
	zero, err := ParseFaultSpec("seed=1,rate=0.1,shard=0")
	if err != nil {
		t.Fatal(err)
	}
	if zero.Shard != 1 || !zero.TargetsShard(0) || zero.TargetsShard(1) {
		t.Fatalf("shard=0 parsed to Shard=%d", zero.Shard)
	}
	// String renders the selector and the rendered form is a fixpoint.
	s := cfg.String()
	if !strings.Contains(s, "shard=2") {
		t.Fatalf("rendered spec %q lacks shard selector", s)
	}
	back, err := ParseFaultSpec(s)
	if err != nil || back != cfg {
		t.Fatalf("round trip of %q: %+v, %v", s, back, err)
	}
	for _, bad := range []string{"shard=-1", "shard=x", "shard=1.5", "shard=9223372036854775807"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q did not fail", bad)
		}
	}
}

func TestParseFaultSpecBrownout(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=11,latsec=0.02,latwindow=60,latwindowops=80,shard=1")
	if err != nil {
		t.Fatal(err)
	}
	want := fault.Config{
		Seed: 11, LatencySeconds: 0.02,
		BrownoutAfter: 60, BrownoutOps: 80, Shard: 2,
	}
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}
	// latsec renders without a latency rate when a brownout needs it,
	// and the rendered form is a parse fixpoint.
	s := cfg.String()
	for _, frag := range []string{"latsec=0.02", "latwindow=60", "latwindowops=80"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendered spec %q lacks %q", s, frag)
		}
	}
	if strings.Contains(s, "latency=") {
		t.Fatalf("rendered spec %q has a latency rate", s)
	}
	back, err := ParseFaultSpec(s)
	if err != nil || back != cfg {
		t.Fatalf("round trip of %q: %+v, %v", s, back, err)
	}
	// Brownout stacked on a random spike schedule keeps both key sets.
	both, err := ParseFaultSpec("seed=2,rate=0.01,latency=0.05,latsec=0.004,latwindow=10,latwindowops=5")
	if err != nil {
		t.Fatal(err)
	}
	if both.LatencyRate != 0.05 || both.BrownoutAfter != 10 || both.BrownoutOps != 5 {
		t.Fatalf("stacked spec parsed to %+v", both)
	}
	if s := both.String(); s != "seed=2,rate=0.01,latency=0.05,latsec=0.004,latwindow=10,latwindowops=5" {
		t.Fatalf("stacked spec rendered %q", s)
	}
	for _, bad := range []string{"latwindow=-1", "latwindow=x", "latwindowops=-2", "latwindowops=1.5"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q did not fail", bad)
		}
	}
}

// TestParseFaultSpecFuzzRoundTrip drives randomized configs through
// String -> ParseFaultSpec -> String and demands a fixed point: every
// field combination the injector can express (silent-corruption rates
// included) must survive the CLI syntax bit-exactly. %g prints the
// shortest decimal that round-trips through ParseFloat, so equality is
// exact, not approximate.
func TestParseFaultSpecFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		cfg := fault.Config{Seed: rng.Uint64() % 10000, Rate: rng.Float64()}
		if rng.Intn(2) == 1 {
			cfg.TornRate = rng.Float64()
		}
		if rng.Intn(2) == 1 {
			cfg.LatencyRate = rng.Float64()
			cfg.LatencySeconds = rng.Float64() / 100
		}
		if rng.Intn(2) == 1 {
			cfg.PersistentAfter = rng.Int63n(500) + 1
			cfg.PersistentOps = rng.Int63n(8) + 1
		}
		if rng.Intn(2) == 1 {
			cfg.BrownoutAfter = rng.Int63n(500) + 1
			cfg.BrownoutOps = rng.Int63n(100) + 1
			if cfg.LatencyRate == 0 {
				// A brownout without a latency rate still renders latsec.
				cfg.LatencySeconds = rng.Float64() / 50
			}
		}
		if rng.Intn(2) == 1 {
			cfg.MaxConsecutive = rng.Intn(6) + 1
		}
		if rng.Intn(2) == 1 {
			cfg.BitFlipRate = rng.Float64()
		}
		if rng.Intn(2) == 1 {
			cfg.LostRate = rng.Float64()
		}
		if rng.Intn(2) == 1 {
			cfg.SilentTornRate = rng.Float64()
		}
		if rng.Intn(2) == 1 {
			cfg.Shard = rng.Intn(64) + 1
		}
		s := cfg.String()
		back, err := ParseFaultSpec(s)
		if err != nil {
			t.Fatalf("config %d: parse %q: %v", i, s, err)
		}
		if back != cfg {
			t.Fatalf("config %d: %q parsed to %+v, want %+v", i, s, back, cfg)
		}
		if got := back.String(); got != s {
			t.Fatalf("config %d: re-stringed to %q, want %q", i, got, s)
		}
	}
}

func TestParseRingSpec(t *testing.T) {
	cases := []struct {
		spec     string
		shards   int
		replicas int
	}{
		{"P=8,R=2", 8, 2},
		{"p=16, r=3", 16, 3},
		{"shards=4,replicas=1", 4, 1},
		{"R=3", 8, 3},   // P defaults
		{"P=12", 12, 2}, // R defaults
	}
	for _, c := range cases {
		rs, err := ParseRingSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseRingSpec(%q): %v", c.spec, err)
		}
		if rs.Shards != c.shards || rs.Replicas != c.replicas {
			t.Fatalf("ParseRingSpec(%q) = %+v, want P=%d R=%d", c.spec, rs, c.shards, c.replicas)
		}
		// String renders the flag syntax back; a fixpoint of the parser.
		back, err := ParseRingSpec(rs.String())
		if err != nil || back != rs {
			t.Fatalf("round trip of %q via %q: %+v, %v", c.spec, rs.String(), back, err)
		}
	}
	for _, bad := range []string{"", "P", "P=0", "R=-2", "P=x", "Q=3", "P=8;R=2"} {
		if _, err := ParseRingSpec(bad); err == nil {
			t.Fatalf("ParseRingSpec(%q) accepted", bad)
		}
	}
}

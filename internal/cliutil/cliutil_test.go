package cliutil

import (
	"testing"

	"repro/internal/machine"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"2g":   2 * machine.GB,
		"1.5G": machine.GB + machine.GB/2,
		"512m": 512 * machine.MB,
		"64K":  64 * machine.KB,
		"1000": 1000,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "zz", "-1g", "0"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) should fail", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 8 {
		t.Fatalf("ParseInts = %v", got)
	}
	for _, bad := range []string{"", "a", "1,-2", "1,,2"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) should fail", bad)
		}
	}
}

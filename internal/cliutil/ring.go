package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// RingSpec is the parsed form of the -ring flag: the shape of the
// replicated sharded data plane a run should execute against.
type RingSpec struct {
	// Shards is the number of shard backends on the consistent-hash
	// ring (the flag's P key).
	Shards int
	// Replicas is the replication factor: how many distinct shards
	// hold a copy of each block (the flag's R key).
	Replicas int
}

// String renders the spec in the flag syntax (a ParseRingSpec fixpoint).
func (r RingSpec) String() string {
	return fmt.Sprintf("P=%d,R=%d", r.Shards, r.Replicas)
}

// ParseRingSpec parses the -ring flag syntax, e.g. "P=8,R=2":
// comma-separated key=value pairs with keys P (shard count) and R
// (replication factor), case-insensitive. Omitted keys default to
// P=8, R=2. Structural validation beyond positivity (R <= P, minimum
// shard count) is ring.New's job, so its errors stay in one place.
func ParseRingSpec(spec string) (RingSpec, error) {
	out := RingSpec{Shards: 8, Replicas: 2}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return out, fmt.Errorf("cliutil: empty ring spec")
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return out, fmt.Errorf("cliutil: ring spec entry %q is not key=value", part)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		n, err := strconv.Atoi(v)
		if err == nil && n <= 0 {
			err = fmt.Errorf("cliutil: must be positive")
		}
		if err != nil {
			return out, fmt.Errorf("cliutil: ring spec %s=%q: %w", k, v, err)
		}
		switch strings.ToLower(k) {
		case "p", "shards":
			out.Shards = n
		case "r", "replicas":
			out.Replicas = n
		default:
			return out, fmt.Errorf("cliutil: unknown ring spec key %q", k)
		}
	}
	return out, nil
}

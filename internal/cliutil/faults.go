package cliutil

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/fault"
)

// ParseFaultSpec parses the -faults flag syntax into a fault schedule:
// comma-separated key=value pairs, e.g.
//
//	seed=7,rate=0.05,torn=0.02,latency=0.01,latsec=0.005,persistent=200,persistentops=3,maxconsec=2,bitflip=0.01,lost=0.01,silenttorn=0.01,shard=2
//
// Keys mirror fault.Config (fault.Config.String round-trips through this
// parser); every key is optional, but the spec must not be empty. The
// shard key is a 0-based shard index restricting the schedule to one
// replica of a sharded data plane (ring.Store); without it the schedule
// applies to every shard. The latwindow/latwindowops keys open a
// persistent brownout window: every op with ordinal in
// [latwindow, latwindow+latwindowops) pays latsec of modelled latency
// without erroring — the injectable gray failure.
func ParseFaultSpec(spec string) (fault.Config, error) {
	var cfg fault.Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, fmt.Errorf("cliutil: empty fault spec")
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("cliutil: fault spec entry %q is not key=value", part)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "rate":
			cfg.Rate, err = parseRate(k, v)
		case "torn":
			cfg.TornRate, err = parseRate(k, v)
		case "latency":
			cfg.LatencyRate, err = parseRate(k, v)
		case "latsec":
			cfg.LatencySeconds, err = strconv.ParseFloat(v, 64)
			if err == nil && (cfg.LatencySeconds < 0 || !isFinite(cfg.LatencySeconds)) {
				err = fmt.Errorf("cliutil: latsec must be finite and >= 0")
			}
		case "latwindow":
			// Brownout window start ordinal: every op in
			// [latwindow, latwindow+latwindowops) pays latsec of modelled
			// latency without erroring.
			cfg.BrownoutAfter, err = strconv.ParseInt(v, 10, 64)
			if err == nil && cfg.BrownoutAfter < 0 {
				err = fmt.Errorf("cliutil: latwindow must be >= 0")
			}
		case "latwindowops":
			cfg.BrownoutOps, err = strconv.ParseInt(v, 10, 64)
			if err == nil && cfg.BrownoutOps < 0 {
				err = fmt.Errorf("cliutil: latwindowops must be >= 0")
			}
		case "maxconsec":
			cfg.MaxConsecutive, err = strconv.Atoi(v)
		case "bitflip":
			cfg.BitFlipRate, err = parseRate(k, v)
		case "lost":
			cfg.LostRate, err = parseRate(k, v)
		case "silenttorn":
			cfg.SilentTornRate, err = parseRate(k, v)
		case "persistent":
			cfg.PersistentAfter, err = strconv.ParseInt(v, 10, 64)
		case "persistentops":
			cfg.PersistentOps, err = strconv.ParseInt(v, 10, 64)
		case "shard":
			// 0-based shard index targeting one replica of a sharded
			// data plane; Config stores index+1 so the zero value stays
			// "every shard".
			var idx int
			idx, err = strconv.Atoi(v)
			if err == nil && (idx < 0 || idx >= math.MaxInt) {
				err = fmt.Errorf("cliutil: shard index out of range")
			}
			if err == nil {
				cfg.Shard = idx + 1
			}
		default:
			return cfg, fmt.Errorf("cliutil: unknown fault spec key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("cliutil: fault spec %s=%q: %w", k, v, err)
		}
	}
	return cfg, nil
}

// parseRate parses a probability in [0, 1]. NaN fails both range
// comparisons, so it is rejected explicitly.
func parseRate(key, v string) (float64, error) {
	r, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 || !isFinite(r) {
		return 0, fmt.Errorf("cliutil: %s %g outside [0,1]", key, r)
	}
	return r, nil
}

// isFinite reports whether f is neither NaN nor an infinity.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

package cliutil

import (
	"strings"
	"testing"
)

// FuzzParseFaultSpec checks the -faults flag parser on arbitrary
// input: it never panics, rejects with an error rather than returning
// half-parsed garbage silently, and every accepted config round-trips
// through fault.Config.String — the property the flag's documentation
// promises.
func FuzzParseFaultSpec(f *testing.F) {
	f.Add("seed=7,rate=0.05")
	f.Add("seed=7,rate=0.05,torn=0.02,latency=0.01,latsec=0.005,persistent=200,persistentops=3,maxconsec=2,bitflip=0.01,lost=0.01,silenttorn=0.01")
	f.Add("rate=1.5")
	f.Add("rate")
	f.Add("")
	f.Add("seed=18446744073709551615")
	f.Add(" seed = 1 , rate = 0.5 ")
	f.Add("rate=NaN")
	f.Add("rate=-0")
	f.Add("seed=1,rate=0.1,shard=2")
	f.Add("seed=3,rate=0.05,persistent=10,persistentops=4,shard=0")
	f.Add("shard=-1")
	f.Add("shard=9223372036854775807")
	f.Add("seed=11,latsec=0.02,latwindow=60,latwindowops=80,shard=1")
	f.Add("seed=2,rate=0.01,latency=0.05,latsec=0.004,latwindow=10,latwindowops=5")
	f.Add("latwindow=-1")
	f.Add("latwindowops=3")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseFaultSpec(spec)
		if err != nil {
			return
		}
		// String canonicalizes (fields that cannot take effect — a
		// persistent width with no window, a latency duration with no
		// rate — are dropped), so the round-trip property is that the
		// rendered form is a fixpoint of parse∘render.
		rendered := cfg.String()
		back, err := ParseFaultSpec(rendered)
		if err != nil {
			t.Fatalf("accepted spec %q renders as %q which does not re-parse: %v", spec, rendered, err)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("rendered spec is not a round-trip fixpoint:\n spec: %q\n once: %q\n twice: %q", spec, rendered, again)
		}
		// Rates documented as probabilities must actually be in [0,1].
		for name, r := range map[string]float64{
			"rate": cfg.Rate, "torn": cfg.TornRate, "latency": cfg.LatencyRate,
			"bitflip": cfg.BitFlipRate, "lost": cfg.LostRate, "silenttorn": cfg.SilentTornRate,
		} {
			if r < 0 || r > 1 || r != r {
				t.Fatalf("accepted spec %q yields %s=%g outside [0,1]", spec, name, r)
			}
		}
		if strings.TrimSpace(spec) == "" {
			t.Fatalf("empty spec %q was accepted", spec)
		}
	})
}

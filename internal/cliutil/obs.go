package cliutil

// Shared observability surface of the command-line tools: Chrome-trace
// and metrics-snapshot export, CPU/heap profiles, the structured event
// log with its in-memory flight recorder, periodic metrics sampling,
// the live status server (-listen: /metrics, /healthz, /statusz,
// /debug/pprof), and the -version flag. Each binary registers the
// flags it wants, calls Start after flag.Parse, and defers Finish.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/statusz"
)

// ringSize bounds the flight recorder: enough to explain an incident,
// small enough to hold resident for the whole run.
const ringSize = 512

// Obs bundles the observability flags and their lifecycle.
type Obs struct {
	TraceOut   string
	MetricsOut string
	CPUProfile string
	MemProfile string
	PprofAddr  string // deprecated alias for Listen

	Listen       string
	Linger       time.Duration
	LogOut       string
	LogLevel     string
	SampleOut    string
	SamplePeriod time.Duration

	registry   *obs.Registry
	tracer     *obs.Tracer
	cpuOut     *os.File
	eventLog   *obs.Log
	ring       *obs.Ring
	logSink    *obs.WriterSink
	logFile    *os.File // nil when LogOut is "-" (stderr)
	sampler    *obs.Sampler
	sampleFile *os.File
	server     *statusz.Server
	cancel     context.CancelFunc
}

// RegisterObs registers the observability flags (-trace-out,
// -metrics-out, -cpuprofile, -memprofile, -listen, -listen-linger,
// -log-out, -log-level, -sample-out, -sample-period) on the default
// FlagSet.
func RegisterObs() *Obs { return RegisterObsOn(flag.CommandLine) }

// RegisterObsOn is RegisterObs on an explicit FlagSet.
func RegisterObsOn(fs *flag.FlagSet) *Obs {
	o := &Obs{}
	fs.StringVar(&o.TraceOut, "trace-out", "", "write the run's timeline as Chrome Trace Event JSON to this file")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write a metrics snapshot as JSON to this file")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.Listen, "listen", "", "serve live status endpoints (/metrics, /healthz, /statusz, /debug/pprof) on this address (e.g. localhost:9464)")
	fs.DurationVar(&o.Linger, "listen-linger", 0, "with -listen: keep serving this long after the run finishes, so scrapers can read the final state")
	fs.StringVar(&o.LogOut, "log-out", "", "append the structured event log as JSON lines to this file (\"-\" for stderr)")
	fs.StringVar(&o.LogLevel, "log-level", "info", "minimum event log level: debug, info, warn, or error")
	fs.StringVar(&o.SampleOut, "sample-out", "", "write periodic metrics samples as JSON lines to this file")
	fs.DurationVar(&o.SamplePeriod, "sample-period", time.Second, "interval between -sample-out rows")
	fs.StringVar(&o.PprofAddr, "pprof", "", "deprecated alias for -listen")
	return o
}

// Registry returns the metrics registry to thread through the run (nil
// unless Start allocated one for -metrics-out, -listen, or
// -sample-out), so callers can skip the wiring when nothing will be
// exported.
func (o *Obs) Registry() *obs.Registry { return o.registry }

// Tracer returns the span tracer to thread through the run (nil unless
// -trace-out was given and Start ran).
func (o *Obs) Tracer() *obs.Tracer { return o.tracer }

// Log returns the structured event log to thread through the run (nil
// unless -log-out or -listen was given and Start ran; a nil *obs.Log
// is a safe no-op, so callers pass it unconditionally).
func (o *Obs) Log() *obs.Log { return o.eventLog }

// Server returns the live status server (nil unless -listen was given
// and Start ran).
func (o *Obs) Server() *statusz.Server { return o.server }

// SetPhase labels the run's current phase on /statusz and in the
// event log. Safe to call when no server or log is active.
func (o *Obs) SetPhase(phase string) {
	if o.server != nil {
		o.server.SetPhase(phase)
	}
	o.eventLog.Debug("obs", "phase", obs.F("phase", phase))
}

// newRunID returns a short random hex ID stamped on every event of
// this process's run.
func newRunID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("pid%d", os.Getpid())
	}
	return hex.EncodeToString(b[:])
}

// Start allocates the requested sinks, begins CPU profiling, starts
// the sampler, and binds the status server. Call it after flag.Parse.
func (o *Obs) Start() error {
	if o.Listen == "" {
		o.Listen = o.PprofAddr
	}
	level, err := obs.ParseLevel(o.LogLevel)
	if err != nil {
		return fmt.Errorf("cliutil: -log-level: %w", err)
	}
	if o.TraceOut != "" {
		o.tracer = obs.NewTracer()
	}
	if o.MetricsOut != "" || o.Listen != "" || o.SampleOut != "" {
		o.registry = obs.NewRegistry()
	}
	var sinks []obs.Sink
	if o.LogOut != "" {
		var w io.Writer = os.Stderr
		if o.LogOut != "-" {
			f, err := os.Create(o.LogOut)
			if err != nil {
				return fmt.Errorf("cliutil: -log-out: %w", err)
			}
			o.logFile, w = f, f
		}
		o.logSink = obs.NewWriterSink(w)
		sinks = append(sinks, o.logSink)
	}
	if o.Listen != "" || o.LogOut != "" {
		o.ring = obs.NewRing(ringSize)
		sinks = append(sinks, o.ring)
	}
	o.eventLog = obs.NewLog(level, obs.Tee(sinks...)).WithRun(newRunID())
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		o.cpuOut = f
	}
	ctx, cancel := context.WithCancel(context.Background())
	o.cancel = cancel
	if o.SampleOut != "" {
		f, err := os.Create(o.SampleOut)
		if err != nil {
			return fmt.Errorf("cliutil: -sample-out: %w", err)
		}
		o.sampleFile = f
		o.sampler = obs.NewSampler(o.registry, f, o.SamplePeriod)
		o.sampler.Start(ctx)
	}
	if o.Listen != "" {
		srv, err := statusz.Start(ctx, o.Listen, statusz.Options{
			Registry: o.registry,
			Ring:     o.ring,
			Version:  VersionString(),
		})
		if err != nil {
			cancel()
			return fmt.Errorf("cliutil: status server: %w", err)
		}
		o.server = srv
		srv.SetPhase("running")
		o.eventLog.Info("obs", "server.listen", obs.F("addr", srv.Addr()))
	}
	return nil
}

// Finish stops profiling, writes every requested artifact, flushes the
// event log and sampler, lingers the status server if asked, and shuts
// everything down, returning the first error. Safe to call when Start
// was never reached.
func (o *Obs) Finish() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if o.cpuOut != nil {
		pprof.StopCPUProfile()
		keep(o.cpuOut.Close())
		o.cpuOut = nil
	}
	if o.MemProfile != "" {
		f, err := os.Create(o.MemProfile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // up-to-date allocation statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	if o.tracer != nil {
		f, err := os.Create(o.TraceOut)
		if err != nil {
			keep(err)
		} else {
			keep(o.tracer.WriteChromeTrace(f))
			keep(f.Close())
		}
	}
	if o.sampler != nil {
		keep(o.sampler.Stop()) // final row before the snapshot is written
		o.sampler = nil
	}
	if o.sampleFile != nil {
		keep(o.sampleFile.Close())
		o.sampleFile = nil
	}
	if o.registry != nil && o.MetricsOut != "" {
		f, err := os.Create(o.MetricsOut)
		if err != nil {
			keep(err)
		} else {
			keep(o.registry.WriteJSON(f))
			keep(f.Close())
		}
	}
	o.eventLog.Info("obs", "run.finish")
	if o.server != nil {
		// Counters no longer move: a scrape during the linger window
		// matches the -metrics-out snapshot exactly.
		o.server.SetPhase("done")
		if o.Linger > 0 {
			select {
			case <-time.After(o.Linger):
			case <-o.server.Done():
			}
		}
		grace, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		keep(o.server.Shutdown(grace))
		cancel()
		o.server = nil
	}
	if o.cancel != nil {
		o.cancel()
		o.cancel = nil
	}
	if o.logSink != nil {
		keep(o.logSink.Err())
		o.logSink = nil
	}
	if o.logFile != nil {
		keep(o.logFile.Close())
		o.logFile = nil
	}
	return first
}

// Fatal reports a fatal run error: it logs an error event, dumps the
// flight recorder to stderr for post-mortem, flushes every artifact
// via Finish, and exits 1.
func (o *Obs) Fatal(err error) {
	o.eventLog.Error("obs", "run.fatal", obs.F("error", err))
	//lint:ignore obslog terminal fatal-path reporting is the CLI surface itself
	fmt.Fprintf(os.Stderr, "%s: %v\n", filepath.Base(os.Args[0]), err)
	if o.ring != nil && o.ring.Len() > 0 {
		//lint:ignore obslog post-mortem ring dump must reach the operator even when sinks are gone
		fmt.Fprintf(os.Stderr, "-- flight recorder (last %d events) --\n", o.ring.Len())
		_ = o.ring.WriteJSONL(os.Stderr)
	}
	if ferr := o.Finish(); ferr != nil {
		//lint:ignore obslog terminal fatal-path reporting is the CLI surface itself
		fmt.Fprintf(os.Stderr, "%s: %v\n", filepath.Base(os.Args[0]), ferr)
	}
	os.Exit(1)
}

// VersionFlag registers -version on the default FlagSet and returns a
// function to call after flag.Parse: when the flag was given it prints
// the binary name and version, then exits.
func VersionFlag() func() { return VersionFlagOn(flag.CommandLine) }

// VersionFlagOn is VersionFlag on an explicit FlagSet.
func VersionFlagOn(fs *flag.FlagSet) func() {
	v := fs.Bool("version", false, "print version information and exit")
	return func() {
		if !*v {
			return
		}
		fmt.Printf("%s %s\n", filepath.Base(os.Args[0]), VersionString())
		os.Exit(0)
	}
}

// VersionString reports the module version and, when the binary was built
// from a version-controlled tree, the embedded VCS revision.
func VersionString() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	rev, dirty := "", ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return ver + " (" + rev + dirty + ")"
	}
	return ver
}

package cliutil

// Shared observability surface of the command-line tools: Chrome-trace
// and metrics-snapshot export, CPU/heap profiles, a live net/http/pprof
// server, and the -version flag. Each binary registers the flags it
// wants, calls Start after flag.Parse, and defers Finish.

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"

	"repro/internal/obs"
)

// Obs bundles the observability flags and their lifecycle.
type Obs struct {
	TraceOut   string
	MetricsOut string
	CPUProfile string
	MemProfile string
	PprofAddr  string

	registry *obs.Registry
	tracer   *obs.Tracer
	cpuOut   *os.File
}

// RegisterObs registers -trace-out, -metrics-out, -cpuprofile,
// -memprofile, and -pprof on the default FlagSet.
func RegisterObs() *Obs { return RegisterObsOn(flag.CommandLine) }

// RegisterObsOn is RegisterObs on an explicit FlagSet.
func RegisterObsOn(fs *flag.FlagSet) *Obs {
	o := &Obs{}
	fs.StringVar(&o.TraceOut, "trace-out", "", "write the run's timeline as Chrome Trace Event JSON to this file")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write a metrics snapshot as JSON to this file")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return o
}

// Registry returns the metrics registry to thread through the run (nil
// unless -metrics-out was given and Start ran), so callers can skip the
// wiring when nothing will be exported.
func (o *Obs) Registry() *obs.Registry { return o.registry }

// Tracer returns the span tracer to thread through the run (nil unless
// -trace-out was given and Start ran).
func (o *Obs) Tracer() *obs.Tracer { return o.tracer }

// Start allocates the requested sinks, begins CPU profiling, and starts
// the pprof server. Call it after flag.Parse.
func (o *Obs) Start() error {
	if o.TraceOut != "" {
		o.tracer = obs.NewTracer()
	}
	if o.MetricsOut != "" {
		o.registry = obs.NewRegistry()
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		o.cpuOut = f
	}
	if o.PprofAddr != "" {
		ln, err := net.Listen("tcp", o.PprofAddr)
		if err != nil {
			return fmt.Errorf("cliutil: pprof server: %w", err)
		}
		go http.Serve(ln, nil) // DefaultServeMux carries the pprof handlers
	}
	return nil
}

// Finish stops profiling and writes every requested artifact, returning
// the first error. Safe to call when Start was never reached.
func (o *Obs) Finish() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if o.cpuOut != nil {
		pprof.StopCPUProfile()
		keep(o.cpuOut.Close())
		o.cpuOut = nil
	}
	if o.MemProfile != "" {
		f, err := os.Create(o.MemProfile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // up-to-date allocation statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	if o.tracer != nil {
		f, err := os.Create(o.TraceOut)
		if err != nil {
			keep(err)
		} else {
			keep(o.tracer.WriteChromeTrace(f))
			keep(f.Close())
		}
	}
	if o.registry != nil {
		f, err := os.Create(o.MetricsOut)
		if err != nil {
			keep(err)
		} else {
			keep(o.registry.WriteJSON(f))
			keep(f.Close())
		}
	}
	return first
}

// VersionFlag registers -version on the default FlagSet and returns a
// function to call after flag.Parse: when the flag was given it prints
// the binary name and version, then exits.
func VersionFlag() func() { return VersionFlagOn(flag.CommandLine) }

// VersionFlagOn is VersionFlag on an explicit FlagSet.
func VersionFlagOn(fs *flag.FlagSet) func() {
	v := fs.Bool("version", false, "print version information and exit")
	return func() {
		if !*v {
			return
		}
		fmt.Printf("%s %s\n", filepath.Base(os.Args[0]), VersionString())
		os.Exit(0)
	}
}

// VersionString reports the module version and, when the binary was built
// from a version-controlled tree, the embedded VCS revision.
func VersionString() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	rev, dirty := "", ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return ver + " (" + rev + dirty + ")"
	}
	return ver
}

package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestObsTelemetryPlane drives the full telemetry plane of one CLI
// run: a status server on an ephemeral port, a JSONL event log, a
// sampler, and a metrics snapshot — then checks the acceptance
// invariant that the live /metrics scrape agrees with the end-of-run
// snapshot.
func TestObsTelemetryPlane(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterObsOn(fs)
	if err := fs.Parse([]string{
		"-listen", "127.0.0.1:0",
		"-log-out", filepath.Join(dir, "events.jsonl"),
		"-log-level", "debug",
		"-sample-out", filepath.Join(dir, "samples.jsonl"),
		"-metrics-out", filepath.Join(dir, "metrics.json"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	reg := o.Registry()
	if reg == nil {
		t.Fatal("no registry despite -metrics-out")
	}
	reg.Counter("dcs.evals").Add(123)
	reg.CounterVec("fault.injected.by_kind", "kind").With("torn").Add(2)
	o.SetPhase("running-test")
	o.Log().WithScenario("unit").Info("dcs", "solve.final", obs.F("best", 4.2))

	addr := o.Server().Addr()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}
	live := get("/metrics")
	if !strings.Contains(live, "dcs_evals 123") ||
		!strings.Contains(live, `fault_injected_by_kind{kind="torn"} 2`) {
		t.Fatalf("/metrics missing series:\n%s", live)
	}
	statusz := get("/statusz")
	if !strings.Contains(statusz, `"running-test"`) || !strings.Contains(statusz, "solve.final") {
		t.Fatalf("/statusz missing phase or ring events:\n%s", statusz)
	}

	if err := o.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	// The live scrape equals the end-of-run snapshot, series by series.
	raw, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["dcs.evals"] != 123 ||
		snap.Counters[`fault.injected.by_kind{kind="torn"}`] != 2 {
		t.Fatalf("snapshot disagrees with live scrape: %v", snap.Counters)
	}

	// The event log round-trips, carries one run ID, and holds the
	// lifecycle events around the payload event.
	f, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range events {
		if e.Run == "" || e.Run != events[0].Run {
			t.Fatalf("event %+v lacks the shared run ID", e)
		}
		names[e.System+"/"+e.Name] = true
	}
	for _, want := range []string{"obs/server.listen", "obs/phase", "dcs/solve.final", "obs/run.finish"} {
		if !names[want] {
			t.Fatalf("event log missing %s; have %v", want, names)
		}
	}

	// The sampler wrote at least its end-of-run row.
	rows, err := os.ReadFile(filepath.Join(dir, "samples.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rows), `"dcs.evals":123`) {
		t.Fatalf("sample rows lack final counters: %s", rows)
	}

	// Everything shut down: the port no longer accepts.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("status server still accepting after Finish")
	}
}

// TestObsStartBadListen pins the satellite fix: a bad -listen address
// fails Start synchronously instead of dying in a background goroutine.
func TestObsStartBadListen(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterObsOn(fs)
	if err := fs.Parse([]string{"-listen", "256.256.256.256:http"}); err != nil {
		t.Fatal(err)
	}
	err := o.Start()
	if err == nil {
		o.Finish()
		t.Fatal("bad -listen did not fail Start")
	}
	if !strings.Contains(err.Error(), "cliutil: status server") {
		t.Fatalf("error %v lacks attribution", err)
	}
}

// TestObsPprofAlias keeps the deprecated -pprof flag meaning -listen.
func TestObsPprofAlias(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterObsOn(fs)
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	srv := o.Server()
	if srv == nil {
		t.Fatal("-pprof did not start the status server")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint = %d", resp.StatusCode)
	}
	if err := o.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestObsBadLogLevel(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterObsOn(fs)
	if err := fs.Parse([]string{"-log-level", "loud"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("bad -log-level error = %v", err)
	}
}

package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dcs"
	"repro/internal/loops"
	"repro/internal/machine"
)

// TestStrategySpecsTotal pins the spec table as the single source of
// truth between core.Strategy and dcs.Strategy: every core strategy must
// have a spec, every dcs strategy must be reachable from some core
// strategy, and no spec may reference a dcs strategy the solver rejects.
// If either enum gains a value without the table being updated, this
// fails.
func TestStrategySpecsTotal(t *testing.T) {
	coreStrategies := []Strategy{DCS, UniformSampling, DCSConstrainedAnnealing, RandomSearch}
	if len(strategySpecs) != len(coreStrategies) {
		t.Fatalf("strategySpecs has %d entries for %d strategies", len(strategySpecs), len(coreStrategies))
	}
	covered := map[dcs.Strategy]bool{}
	for _, s := range coreStrategies {
		sp, ok := strategySpecs[s]
		if !ok {
			t.Fatalf("strategy %d (%v) has no spec", int(s), s)
		}
		if sp.name == "" || strings.Contains(sp.name, "Strategy(") {
			t.Fatalf("strategy %v has no proper name: %q", int(s), sp.name)
		}
		if sp.name != s.String() {
			t.Fatalf("String() = %q, spec name = %q", s.String(), sp.name)
		}
		if sp.solverBased {
			covered[sp.solver] = true
			// The solver must accept the configured strategy: a drifted
			// enum value would error out of a 1-eval run.
			if _, err := dcs.Run(context.Background(), tinyProblem{},
				dcs.WithStrategy(sp.solver), dcs.WithBudget(10), dcs.WithRestarts(1)); err != nil {
				t.Fatalf("spec of %v configures a solver strategy the solver rejects: %v", s, err)
			}
		}
	}
	for _, ds := range []dcs.Strategy{dcs.DLM, dcs.CSA, dcs.RandomSearch} {
		if !covered[ds] {
			t.Fatalf("dcs strategy %v is not reachable from any core strategy", ds)
		}
	}
	// SolverStrategy mirrors the table.
	if ds, ok := DCS.SolverStrategy(); !ok || ds != dcs.DLM {
		t.Fatalf("DCS.SolverStrategy() = %v,%v", ds, ok)
	}
	if _, ok := UniformSampling.SolverStrategy(); ok {
		t.Fatal("UniformSampling must not be solver-based")
	}
	if Strategy(99).String() != "Strategy(99)" {
		t.Fatalf("unknown strategy String() = %q", Strategy(99).String())
	}
}

type tinyProblem struct{}

func (tinyProblem) Dim() int                  { return 1 }
func (tinyProblem) Bounds(int) (int64, int64) { return 0, 1 }
func (tinyProblem) Objective(x []int64) float64 {
	return float64(x[0])
}
func (tinyProblem) Violations([]int64) []float64 { return []float64{0} }

func synthOpts(limit int64, extra ...Option) []Option {
	cfg := machine.OSCItanium2()
	cfg.MemoryLimit = limit
	return append([]Option{
		WithMachine(cfg),
		WithSeed(1),
		WithMaxEvals(60000),
	}, extra...)
}

// TestPortfolioSynthesisDeterministic: a portfolio synthesis must be
// reproducible end to end — same seeds, same winner, bit-identical plan.
func TestPortfolioSynthesisDeterministic(t *testing.T) {
	run := func() *Synthesis {
		s, err := SynthesizeOpts(context.Background(), loops.TwoIndexFused(35000, 40000),
			synthOpts(machine.GB, WithPortfolio(4))...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.SolverLanes != 4 || b.SolverLanes != 4 {
		t.Fatalf("lanes = %d/%d, want 4", a.SolverLanes, b.SolverLanes)
	}
	if a.WinnerLane != b.WinnerLane || a.WinnerSeed != b.WinnerSeed || a.WinnerStrategy != b.WinnerStrategy {
		t.Fatalf("winner differs: %d/%d/%s vs %d/%d/%s",
			a.WinnerLane, a.WinnerSeed, a.WinnerStrategy, b.WinnerLane, b.WinnerSeed, b.WinnerStrategy)
	}
	if len(a.X) != len(b.X) {
		t.Fatal("decision vectors differ in length")
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("plans differ at %d: %v vs %v", i, a.X, b.X)
		}
	}
	if a.WinnerStrategy == "" {
		t.Fatal("winner strategy missing")
	}
}

// TestWarmStartSynthesis: warm-starting a tighter-memory re-solve from a
// looser one must stay feasible, and warm-starting with patience must
// spend fewer evals than the cold solve of the same point.
func TestWarmStartSynthesis(t *testing.T) {
	prog := func() *loops.Program { return loops.TwoIndexFused(35000, 40000) }
	prev, err := SynthesizeOpts(context.Background(), prog(), synthOpts(8*machine.GB)...)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := SynthesizeOpts(context.Background(), prog(), synthOpts(machine.GB)...)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SynthesizeOpts(context.Background(), prog(),
		synthOpts(machine.GB, WithWarmStart(prev), WithPatience(5000))...)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Problem.Feasible(warm.X) {
		t.Fatal("warm synthesis infeasible")
	}
	if warm.SolverEvals >= cold.SolverEvals {
		t.Fatalf("warm solve spent %d evals, cold %d — warm start saved nothing",
			warm.SolverEvals, cold.SolverEvals)
	}
	// Never-worse: the warm result cannot be worse than the remapped
	// previous solution evaluated under the new problem, because the
	// solver evaluates the start first.
	x0, matched := warm.Problem.EncodeAssignment(prev.Assign)
	if matched == 0 {
		t.Fatal("warm start remapped nothing")
	}
	if warm.Problem.Feasible(x0) && warm.Assign.Objective > warm.Problem.Objective(x0)*(1+1e-9) {
		t.Fatalf("warm result %g worse than its own start %g",
			warm.Assign.Objective, warm.Problem.Objective(x0))
	}
}

// TestWarmStartPrunesCandidates: warm-starting the same problem again
// (previous solution trivially feasible) must engage the incumbent bound
// and report pruned candidates without changing feasibility. The
// four-index workload has intermediate placements whose lower bound
// alone exceeds a good solution's total cost.
func TestWarmStartPrunesCandidates(t *testing.T) {
	prog := func() *loops.Program { return loops.FourIndexAbstract(140, 120) }
	prev, err := SynthesizeOpts(context.Background(), prog(), synthOpts(8*machine.GB)...)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SynthesizeOpts(context.Background(), prog(),
		synthOpts(8*machine.GB, WithWarmStart(prev), WithPatience(5000))...)
	if err != nil {
		t.Fatal(err)
	}
	if again.CandidatesPruned <= 0 {
		t.Fatalf("incumbent bound pruned %d candidates, expected > 0", again.CandidatesPruned)
	}
	if !again.Problem.Feasible(again.X) {
		t.Fatal("pruned re-solve infeasible")
	}
	if again.Assign.Objective > prev.Assign.Objective*(1+1e-9) {
		t.Fatalf("re-solve worse than incumbent: %g vs %g",
			again.Assign.Objective, prev.Assign.Objective)
	}
}

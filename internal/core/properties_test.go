package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/loops"
	"repro/internal/machine"
)

// TestMemoryBoundHoldsAcrossSeeds is the solver-to-plan contract on the
// paper's Table 3 configuration (AO-to-MO transform, N=140, V=120): for
// every feasible DCS result, the generated plan's static buffer memory
// must fit the machine limit the NLP constrained it by, and the
// independently re-derived verifier report (WithVerify, rule R2 among
// others) must come back clean.
func TestMemoryBoundHoldsAcrossSeeds(t *testing.T) {
	cfg := machine.OSCItanium2()
	prog := loops.FourIndexAbstract(140, 120)
	for _, seed := range []int64{1, 7, 42} {
		s, err := SynthesizeOpts(context.Background(), prog,
			WithMachine(cfg),
			WithStrategy(DCS),
			WithSeed(seed),
			WithMaxEvals(20000),
			WithVerify(),
		)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !s.Problem.Feasible(s.X) {
			t.Fatalf("seed %d: solver returned infeasible assignment", seed)
		}
		if got, limit := s.Plan.MemoryBytes(), cfg.MemoryLimit; got > limit {
			t.Fatalf("seed %d: plan memory %d exceeds limit %d", seed, got, limit)
		}
		if s.Verify == nil || !s.Verify.OK() {
			t.Fatalf("seed %d: verification report not clean: %v", seed, s.Verify)
		}
	}
}

// TestMoreMemoryNeverHurts checks the optimizer-level property behind
// Table 4: as the memory limit grows, the best synthesizable disk I/O
// time is non-increasing (every configuration feasible at the smaller
// limit stays feasible at the larger one).
func TestMoreMemoryNeverHurts(t *testing.T) {
	cfg := machine.OSCItanium2()
	prev := -1.0
	for _, gb := range []int64{1, 2, 4, 8} {
		c := cfg
		c.MemoryLimit = gb * machine.GB
		s, err := Synthesize(Request{
			Program:  loops.FourIndexAbstract(140, 120),
			Machine:  c,
			Strategy: DCS,
			Seed:     1,
		})
		if err != nil {
			t.Fatalf("%dGB: %v", gb, err)
		}
		got := s.Predicted()
		// Allow 5% solver noise (the searches are independent).
		if prev > 0 && got > prev*1.05 {
			t.Fatalf("predicted time rose with more memory: %.1f @ %dGB (prev %.1f)", got, gb, prev)
		}
		prev = got
	}
}

// TestPredictedAboveIOLowerBound: no synthesized code can move less than
// one read of each input plus one write of the output.
func TestPredictedAboveIOLowerBound(t *testing.T) {
	prog := loops.FourIndexAbstract(140, 120)
	cfg := machine.OSCItanium2()
	s, err := Synthesize(Request{Program: prog, Machine: cfg, Strategy: DCS, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lower := 0.0
	for _, name := range prog.ArraysOfKind(loops.Input) {
		lower += float64(prog.Size(name)*8) / cfg.Disk.ReadBandwidth
	}
	for _, name := range prog.ArraysOfKind(loops.Output) {
		lower += float64(prog.Size(name)*8) / cfg.Disk.WriteBandwidth
	}
	if s.Predicted() < lower {
		t.Fatalf("predicted %.1f below the I/O lower bound %.1f — cost model broken", s.Predicted(), lower)
	}
}

func TestReportBreakdown(t *testing.T) {
	s, err := Synthesize(fig4Request(DCS))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Report()
	for _, want := range []string{"array", "placement", "buffer bytes", "A", "B", "T", "in memory"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
	// The per-array seconds must sum to (approximately) the objective.
	// Parse is overkill; instead check the report is non-empty per line
	// count: header + 5 arrays.
	lines := strings.Count(strings.TrimSpace(r), "\n")
	if lines != 5 {
		t.Fatalf("report has %d data rows, want 5:\n%s", lines, r)
	}
}

package core

// This file is the redesigned public entry point of the synthesis system:
// SynthesizeOpts(ctx, program, ...Option). Functional options replace the
// ever-growing Request struct at call sites, carry cross-cutting concerns
// (context, pipelined execution) that the struct predates, and leave
// Request itself frozen as the compatibility path — Synthesize(Request)
// keeps working unchanged, and every option maps onto it.

import (
	"context"
	"time"

	"repro/internal/dcs"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sampling"
)

// config collects the effect of the options over a Request.
type config struct {
	req           Request
	pipeline      bool
	pipelineDepth int
	extras        synthExtras
	tracer        *obs.Tracer
}

// Option configures SynthesizeOpts.
type Option func(*config)

// WithMachine targets the synthesis at a machine model (default:
// machine.OSCItanium2, the paper's evaluation node).
func WithMachine(m machine.Config) Option {
	return func(c *config) { c.req.Machine = m }
}

// WithStrategy selects the search algorithm (default DCS).
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.req.Strategy = s }
}

// WithSeed makes solver-based strategies deterministic.
func WithSeed(seed int64) Option {
	return func(c *config) { c.req.Seed = seed }
}

// WithMaxEvals bounds the solver's cost-model evaluation budget.
func WithMaxEvals(n int) Option {
	return func(c *config) { c.req.MaxEvals = n }
}

// WithMaxTime bounds the solver wall clock; it is layered on the caller's
// context as a deadline, so expiry returns the best point found rather
// than an error.
func WithMaxTime(d time.Duration) Option {
	return func(c *config) { c.req.MaxTime = d }
}

// WithSampling configures the uniform-sampling strategy.
func WithSampling(o sampling.Options) Option {
	return func(c *config) { c.req.Sampling = o }
}

// WithPlacement configures candidate I/O placement enumeration.
func WithPlacement(o placement.Options) Option {
	return func(c *config) { c.req.Placement = o }
}

// WithAutoFuse applies greedy loop fusion before tiling (programs lowered
// from arbitrary contraction specs; the paper's workloads arrive
// pre-fused).
func WithAutoFuse() Option {
	return func(c *config) { c.req.AutoFuse = true }
}

// WithTileAlignment raises last-dimension tile sizes to at least n
// elements after solving (the spatial-locality adjustment).
func WithTileAlignment(n int64) Option {
	return func(c *config) { c.req.AlignTiles = n }
}

// WithPipeline makes the synthesis execute through the asynchronous
// double-buffered engine: MeasureSim/RunSim/RunFiles prefetch reads and
// retire writes in the background while compute runs, bit-identically to
// serial execution. depth bounds in-flight disk operations (0: default).
func WithPipeline(depth int) Option {
	return func(c *config) {
		c.pipeline = true
		c.pipelineDepth = depth
	}
}

// WithObserver streams solver convergence events (per-restart and
// per-improvement telemetry) to the callback during solver-based
// synthesis. The observer is invoked synchronously from the solver loop.
func WithObserver(o Observer) Option {
	return func(c *config) { c.extras.observer = o }
}

// WithMetrics publishes solver counters (dcs.evals, dcs.restarts,
// dcs.improvements) into the registry during synthesis and attaches the
// registry to the execution helpers' disk backends and engine, so
// MeasureSim/RunSim/RunFiles report I/O and pipeline instrumentation into
// the same snapshot.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) { c.extras.metrics = reg }
}

// WithTracer records the execution helpers' modelled timelines
// (MeasureSim/RunSim/RunFiles) as obs spans for Chrome-trace export.
func WithTracer(tr *obs.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// WithLog streams the synthesis's structured events into the event
// log: the solver's restarts, improvements, and lane wins during the
// solve, and the execution helpers' retry and recovery events
// afterwards (nil disables).
func WithLog(l *obs.Log) Option {
	return func(c *config) { c.extras.log = l }
}

// WithPortfolio races k independently seeded solver lanes (cycling the
// DLM, CSA, and random strategies) in deterministic lockstep rounds
// during solver-based synthesis; the first lane to converge on a
// feasible point stops the race. The evaluation budget is split across
// lanes, so total work never exceeds a single-seed solve (k ≤ 1 keeps
// the plain search).
func WithPortfolio(k int) Option {
	return func(c *config) { c.extras.portfolio = k }
}

// WithStart seeds the solver's first restart with a raw decision vector
// (clamped to the problem bounds). Most callers want WithWarmStart,
// which remaps a previous synthesis instead of assuming an identical
// encoding.
func WithStart(x []int64) Option {
	return func(c *config) { c.extras.start = x }
}

// WithWarmStart seeds the solver from a previous synthesis of the same
// program shape: the prior solution's tile sizes and placement choices
// are remapped into the new problem (by loop-index name and candidate
// label) and used as the starting point. When the remapped point is
// still feasible, its objective additionally acts as an incumbent: the
// placement enumeration prunes every candidate whose analytic cost lower
// bound already exceeds it. This is what lets a sweep over memory limits
// or machine models re-solve incrementally instead of cold.
func WithWarmStart(prev *Synthesis) Option {
	return func(c *config) { c.extras.warm = prev }
}

// WithPatience stops a solver-based synthesis once a feasible point
// exists and no improvement was recorded for n cost evaluations — the
// deterministic early stop that makes warm-started re-solves finish far
// under budget (0 disables).
func WithPatience(n int) Option {
	return func(c *config) { c.extras.patience = n }
}

// WithVerify runs the static plan verifier (internal/verify) over the
// generated plan before returning: dataflow, resource, and schedule
// legality are re-derived from the plan itself, independently of the
// placement enumerator and the NLP constraints that produced it. A
// finding fails the synthesis; a clean report is attached as
// Synthesis.Verify.
func WithVerify() Option {
	return func(c *config) { c.extras.verify = true }
}

// WithConvergence records the solver's convergence curve (restart,
// improvement, and final events) into curve for later export. It composes
// with WithObserver: both receive every event.
func WithConvergence(curve *obs.Convergence) Option {
	return func(c *config) { c.extras.curve = curve }
}

// SynthesizeOpts runs the full synthesis pipeline for a program under a
// context, configured by functional options. It is equivalent to building
// a Request by hand and calling SynthesizeContext, plus the
// execution-engine selection and observability wiring Request cannot
// express.
func SynthesizeOpts(ctx context.Context, prog *loops.Program, opts ...Option) (*Synthesis, error) {
	c := config{req: Request{Program: prog, Machine: machine.OSCItanium2()}}
	for _, o := range opts {
		o(&c)
	}
	s, err := synthesizeWith(ctx, c.req, c.extras)
	if err != nil {
		return nil, err
	}
	s.Pipeline = c.pipeline
	s.PipelineDepth = c.pipelineDepth
	s.Metrics = c.extras.metrics
	s.Tracer = c.tracer
	s.Log = c.extras.log
	return s, nil
}

// Observer receives solver convergence events during synthesis (the
// solver package's event stream, re-exported so call sites need only
// core).
type Observer = dcs.Observer

// SolverEvent is the solver's convergence event type, re-exported.
type SolverEvent = dcs.Event

// Package core is the public façade of the out-of-core synthesis system.
// It wires the full pipeline of the paper together: abstract program →
// loop tiling → candidate I/O placement enumeration → nonlinear
// constrained problem → solver (DCS or the uniform-sampling baseline) →
// concrete out-of-core code, and offers helpers to execute the result on
// simulated or real disks.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/dcs"
	"repro/internal/disk"
	"repro/internal/exec"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/nlp"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sampling"
	"repro/internal/tensor"
	"repro/internal/tiling"
	"repro/internal/verify"
)

// Strategy selects the synthesis search algorithm.
type Strategy int

const (
	// DCS formulates the search as a nonlinear constrained problem and
	// solves it with the discrete constrained search solver (the paper's
	// approach).
	DCS Strategy = iota
	// UniformSampling is the baseline: log-uniform brute-force tile
	// search with greedy I/O placement.
	UniformSampling
	// DCSConstrainedAnnealing uses the CSA variant of the solver.
	DCSConstrainedAnnealing
	// RandomSearch is the ablation baseline: random feasible sampling.
	RandomSearch
)

// strategySpec is a strategy's complete solver configuration — the
// single source of truth mapping core strategies onto the solver. The
// synthesis path reads the spec instead of switching on the enum, so the
// two enums cannot drift (strategy_test.go checks the table is total and
// covers every solver strategy).
type strategySpec struct {
	name string
	// solverBased: the strategy runs through the dcs solver (as opposed
	// to the uniform-sampling baseline); solver is its dcs configuration.
	solverBased bool
	solver      dcs.Strategy
}

var strategySpecs = map[Strategy]strategySpec{
	DCS:                     {name: "DCS", solverBased: true, solver: dcs.DLM},
	UniformSampling:         {name: "uniform-sampling"},
	DCSConstrainedAnnealing: {name: "DCS-CSA", solverBased: true, solver: dcs.CSA},
	RandomSearch:            {name: "random-search", solverBased: true, solver: dcs.RandomSearch},
}

func (s Strategy) String() string {
	if sp, ok := strategySpecs[s]; ok {
		return sp.name
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// SolverStrategy returns the dcs strategy this core strategy configures,
// and whether the strategy is solver-based at all.
func (s Strategy) SolverStrategy() (dcs.Strategy, bool) {
	sp, ok := strategySpecs[s]
	if !ok || !sp.solverBased {
		return 0, false
	}
	return sp.solver, true
}

// Request describes one synthesis task.
type Request struct {
	Program  *loops.Program
	Machine  machine.Config
	Strategy Strategy
	// Seed makes solver-based strategies deterministic.
	Seed int64
	// MaxEvals bounds the solver budget (DCS strategies); 0 uses the
	// solver default.
	MaxEvals int
	// MaxTime bounds the solver wall clock (0: unbounded).
	MaxTime time.Duration
	// Sampling configures the uniform-sampling strategy.
	Sampling sampling.Options
	// Placement configures candidate enumeration.
	Placement placement.Options
	// AutoFuse applies greedy loop fusion (contracting intermediates, as
	// in Fig. 1) before tiling. The paper's workloads arrive pre-fused;
	// programs lowered from arbitrary contraction specs benefit from it.
	AutoFuse bool
	// AlignTiles, when positive, applies the spatial-locality adjustment
	// of the synthesis lineage after solving: the tile size of every loop
	// indexing the fastest-varying dimension of an array is raised to at
	// least this many elements (when the assignment stays feasible), so
	// disk sections occupy long contiguous runs.
	AlignTiles int64
}

// Synthesis is the result of a synthesis run.
type Synthesis struct {
	Request Request
	Tree    *tiling.Tree
	Model   *placement.Model
	Problem *nlp.Problem
	X       []int64
	Assign  nlp.Assignment
	Plan    *codegen.Plan
	// GenTime is the code-generation (search) time — the quantity Table 2
	// compares across approaches.
	GenTime time.Duration
	// SolverEvals is the number of cost-model evaluations performed.
	SolverEvals int64
	// SolverLanes, WinnerLane, WinnerSeed, and WinnerStrategy describe the
	// portfolio race behind a solver-based synthesis: how many lanes ran
	// (1 without WithPortfolio, 0 for sampling) and which lane's point was
	// selected.
	SolverLanes    int
	WinnerLane     int
	WinnerSeed     int64
	WinnerStrategy string
	// CandidatesPruned counts placement candidates removed by the
	// warm-start incumbent lower bound before the solve (0 without
	// WithWarmStart).
	CandidatesPruned int
	// Pipeline selects the asynchronous double-buffered execution engine
	// for MeasureSim/RunSim/RunFiles (set via WithPipeline);
	// PipelineDepth bounds its in-flight disk operations.
	Pipeline      bool
	PipelineDepth int
	// Metrics and Tracer, when non-nil (set via WithMetrics/WithTracer),
	// are attached to the execution helpers: the disk backend publishes
	// its I/O counters into Metrics, and the engine records its modelled
	// timeline into Tracer for Chrome-trace export.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Log, when non-nil (set via WithLog), receives the structured
	// events of the execution helpers (exec retries and recovery).
	Log *obs.Log
	// Verify is the static plan verifier's report (set via WithVerify; nil
	// otherwise). A synthesis only returns with a clean report — a finding
	// fails the run — so it carries the verified schedule-walk statistics.
	Verify *verify.Report
}

// synthExtras carries the observability wiring of SynthesizeOpts that the
// frozen Request struct cannot express.
type synthExtras struct {
	observer dcs.Observer
	metrics  *obs.Registry
	log      *obs.Log
	curve    *obs.Convergence
	verify   bool
	// portfolio races k solver lanes; patience stops a search once the
	// best feasible point stalls; start seeds the solver directly; warm
	// seeds it from a previous synthesis (and prunes candidates against
	// its objective as an incumbent bound).
	portfolio int
	patience  int
	start     []int64
	warm      *Synthesis
}

// solverObserver composes the user observer and the convergence curve
// into the single callback the solver accepts (nil when neither is set).
func (x synthExtras) solverObserver() dcs.Observer {
	if x.observer == nil && x.curve == nil {
		return nil
	}
	return func(e dcs.Event) {
		x.curve.Record(obs.SolveEvent{
			Kind: e.Kind, Lane: e.Lane, Restart: e.Restart, Evals: e.Evals,
			Best: e.Best, Feasible: e.Feasible,
			MaxViolation: e.MaxViolation, MuNorm: e.MuNorm,
		})
		if x.observer != nil {
			x.observer(e)
		}
	}
}

// Synthesize runs the full pipeline. It is the frozen Request-struct
// compatibility path; new call sites should prefer SynthesizeOpts.
func Synthesize(req Request) (*Synthesis, error) {
	return SynthesizeContext(context.Background(), req)
}

// SynthesizeContext runs the full pipeline under a context. Cancellation
// during the solve aborts the synthesis with the context's error; the
// solver itself treats the context as a budget signal (Request.MaxTime is
// layered on the context as a deadline and still returns the best point
// found).
func SynthesizeContext(ctx context.Context, req Request) (*Synthesis, error) {
	return synthesizeWith(ctx, req, synthExtras{})
}

// synthesizeWith is the shared implementation behind SynthesizeContext
// and SynthesizeOpts: the Request carries the frozen surface, extras the
// observability wiring only the options API exposes.
func synthesizeWith(ctx context.Context, req Request, extras synthExtras) (*Synthesis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Program == nil {
		return nil, fmt.Errorf("core: no program")
	}
	if err := req.Machine.Validate(); err != nil {
		return nil, err
	}
	sp, known := strategySpecs[req.Strategy]
	if !known {
		return nil, fmt.Errorf("core: unknown strategy %v", req.Strategy)
	}
	if req.AutoFuse {
		req.Program = loops.FuseGreedy(req.Program)
	}
	tree, err := tiling.Tile(req.Program)
	if err != nil {
		return nil, err
	}
	model, err := placement.Enumerate(tree, req.Machine, req.Placement)
	if err != nil {
		return nil, err
	}
	prob := nlp.Build(model)

	// Warm start: remap the previous synthesis's solution into this
	// problem. When it is still feasible here, its objective is a valid
	// incumbent — re-enumerate with it as a lower-bound filter, shrinking
	// the cross-product candidate space, and remap the start into the
	// pruned problem (the incumbent's own candidates always survive the
	// filter, so the remap stays complete and feasible).
	solveStart := extras.start
	if extras.warm != nil && sp.solverBased {
		if x0, matched := prob.EncodeAssignment(extras.warm.Assign); matched > 0 {
			solveStart = x0
			if prob.Feasible(x0) {
				popt := req.Placement
				popt.BoundIncumbent = prob.Objective(x0)
				if m2, err2 := placement.Enumerate(tree, req.Machine, popt); err2 == nil && m2.BoundPruned > 0 {
					p2 := nlp.Build(m2)
					if x2, matched2 := p2.EncodeAssignment(extras.warm.Assign); matched2 == matched && p2.Feasible(x2) {
						model, prob, solveStart = m2, p2, x2
					}
				}
			}
		}
	}

	start := time.Now()
	var x []int64
	var evals int64
	var race dcs.Result
	if sp.solverBased {
		res, err := dcs.Run(ctx, prob,
			dcs.WithStrategy(sp.solver),
			dcs.WithSeed(req.Seed),
			dcs.WithBudget(req.MaxEvals),
			dcs.WithMaxTime(req.MaxTime),
			dcs.WithStart(solveStart),
			dcs.WithPatience(extras.patience),
			dcs.WithPortfolio(extras.portfolio),
			dcs.WithObserver(extras.solverObserver()),
			dcs.WithMetrics(extras.metrics),
			dcs.WithLog(extras.log),
		)
		if err != nil {
			return nil, err
		}
		// The solver treats ctx expiry as a budget signal; the caller's
		// own cancellation must surface as an error, not a silent
		// truncated search.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: synthesis cancelled: %w", err)
		}
		if !res.Feasible {
			return nil, fmt.Errorf("core: %v found no feasible configuration (memory limit %d too tight?)", req.Strategy, req.Machine.MemoryLimit)
		}
		x = res.X
		evals = int64(res.Evals)
		race = res
	} else {
		res, err := sampling.Search(prob, req.Sampling)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: synthesis cancelled: %w", err)
		}
		x = res.X
		evals = res.Combos
	}
	if req.AlignTiles > 0 {
		x = AlignLastDimTiles(prob, x, req.AlignTiles)
	}
	genTime := time.Since(start)
	if extras.metrics != nil {
		// Self-describing BENCH rows: the snapshot carries the solve's
		// wall clock, eval count, and race outcome alongside the counters.
		extras.metrics.Gauge("core.gen_seconds").Set(genTime.Seconds())
		extras.metrics.Gauge("dcs.result.evals").Set(float64(evals))
		if sp.solverBased {
			extras.metrics.Gauge("dcs.portfolio.lanes").Set(float64(race.Lanes))
			extras.metrics.Gauge("dcs.portfolio.winner_lane").Set(float64(race.WinnerLane))
			extras.metrics.Gauge("dcs.portfolio.winner_seed").Set(float64(race.WinnerSeed))
		}
	}

	plan, err := codegen.Generate(prob, x)
	if err != nil {
		return nil, err
	}
	var rep *verify.Report
	if extras.verify {
		rep = verify.Check(plan)
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("core: synthesized plan failed verification: %w", err)
		}
	}
	syn := &Synthesis{
		Request:          req,
		Tree:             tree,
		Model:            model,
		Problem:          prob,
		X:                x,
		Assign:           prob.Decode(x),
		Plan:             plan,
		GenTime:          genTime,
		SolverEvals:      evals,
		CandidatesPruned: model.BoundPruned,
		Verify:           rep,
	}
	if sp.solverBased {
		syn.SolverLanes = race.Lanes
		syn.WinnerLane = race.WinnerLane
		syn.WinnerSeed = race.WinnerSeed
		syn.WinnerStrategy = race.WinnerStrategy.String()
	}
	return syn, nil
}

// AMPL renders the synthesis problem in the DCS solver's AMPL input
// format.
func (s *Synthesis) AMPL() string {
	var b strings.Builder
	if err := s.Problem.WriteAMPL(&b); err != nil {
		return ""
	}
	return b.String()
}

// Predicted returns the cost model's disk I/O time in seconds for the
// synthesized code (the Table 3 "predicted" column).
func (s *Synthesis) Predicted() float64 { return s.Plan.Predicted }

// execOptions returns the execution options the synthesis selects
// (pipelined or serial, plus observability sinks), with extra fields
// merged in.
func (s *Synthesis) execOptions(opt exec.Options) exec.Options {
	opt.Pipeline = s.Pipeline
	opt.PipelineDepth = s.PipelineDepth
	opt.Metrics = s.Metrics
	opt.Tracer = s.Tracer
	opt.Log = s.Log
	return opt
}

// attachObs connects the synthesis's metrics registry to a backend the
// execution helpers create.
func (s *Synthesis) attachObs(be disk.Backend) {
	if s.Metrics != nil {
		disk.AttachMetrics(be, s.Metrics)
	}
}

// MeasureSim executes the plan's I/O structure against the simulated disk
// at full array scale (dry run, no data) and returns the measured
// statistics (the Table 3 "measured" column).
func (s *Synthesis) MeasureSim() (disk.Stats, error) {
	res, err := s.MeasureSimFull()
	if err != nil {
		return disk.Stats{}, err
	}
	return res.Stats, nil
}

// MeasureSimFull is MeasureSim returning the full execution result; under
// WithPipeline, Result.Pipeline holds the modelled serial-vs-overlapped
// critical-path times.
func (s *Synthesis) MeasureSimFull() (*exec.Result, error) {
	be := disk.NewSim(s.Request.Machine.Disk, false)
	defer be.Close()
	s.attachObs(be)
	return exec.Run(s.Plan, be, nil, s.execOptions(exec.Options{DryRun: true}))
}

// RunSim executes the plan with real data on the in-memory simulated disk
// and returns the outputs and measured statistics. Suitable for small
// (test-scale) problems only.
func (s *Synthesis) RunSim(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, disk.Stats, error) {
	be := disk.NewSim(s.Request.Machine.Disk, true)
	defer be.Close()
	s.attachObs(be)
	res, err := exec.Run(s.Plan, be, inputs, s.execOptions(exec.Options{}))
	if err != nil {
		return nil, disk.Stats{}, err
	}
	return res.Outputs, res.Stats, nil
}

// RunFiles executes the plan against real files under dir.
func (s *Synthesis) RunFiles(dir string, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, disk.Stats, error) {
	be, err := disk.NewFileStore(dir, s.Request.Machine.Disk)
	if err != nil {
		return nil, disk.Stats{}, err
	}
	defer be.Close()
	s.attachObs(be)
	res, err := exec.Run(s.Plan, be, inputs, s.execOptions(exec.Options{}))
	if err != nil {
		return nil, disk.Stats{}, err
	}
	return res.Outputs, res.Stats, nil
}

// Report renders a per-array breakdown of the chosen configuration:
// placement, buffer size, predicted bytes moved and I/O time.
func (s *Synthesis) Report() string {
	var b strings.Builder
	ranges := s.Request.Program.Ranges
	tiles := s.Assign.Tiles
	d := s.Request.Machine.Disk
	fmt.Fprintf(&b, "%-10s %-38s %14s %14s %14s %10s\n",
		"array", "placement", "buffer bytes", "read bytes", "write bytes", "io secs")
	names := make([]string, 0, len(s.Model.Choices))
	byName := map[string]*placement.Candidate{}
	for i := range s.Model.Choices {
		name := s.Model.Choices[i].Name
		names = append(names, name)
		byName[name] = s.Assign.Selected[name]
	}
	for _, name := range names {
		c := byName[name]
		if c == nil {
			continue
		}
		buf, rd, wr, secs := 0.0, 0.0, 0.0, 0.0
		for _, t := range c.MemBytes() {
			buf += t.Eval(tiles, ranges)
		}
		for _, t := range c.ReadBytes() {
			v := t.Eval(tiles, ranges)
			rd += v
			secs += v / d.ReadBandwidth
		}
		for _, t := range c.WriteBytes() {
			v := t.Eval(tiles, ranges)
			wr += v
			secs += v / d.WriteBandwidth
		}
		for _, t := range append(c.ReadOps(), c.WriteOps()...) {
			secs += t.Eval(tiles, ranges) * d.SeekTime
		}
		fmt.Fprintf(&b, "%-10s %-38s %14.0f %14.0f %14.0f %10.1f\n",
			name, c.Label, buf, rd, wr, secs)
	}
	return b.String()
}

// Summary renders a human-readable synthesis report.
func (s *Synthesis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "synthesis of %q via %v\n", s.Request.Program.Name, s.Request.Strategy)
	fmt.Fprintf(&b, "  code generation time: %v (%d cost evaluations)\n", s.GenTime, s.SolverEvals)
	fmt.Fprintf(&b, "  predicted disk I/O time: %.1f s\n", s.Predicted())
	fmt.Fprintf(&b, "  buffer memory: %d bytes (limit %d)\n", s.Plan.MemoryBytes(), s.Request.Machine.MemoryLimit)
	if s.Request.Machine.FlopRate > 0 {
		fmt.Fprintf(&b, "  balance: %s\n", s.Balance())
	}
	b.WriteString(s.Assign.Describe())
	return b.String()
}

package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
)

// ExampleSynthesize synthesizes out-of-core code for the paper's running
// example and prints the chosen strategy for the intermediate T.
func ExampleSynthesize() {
	cfg := machine.OSCItanium2()
	cfg.MemoryLimit = 1 * machine.GB
	s, err := core.Synthesize(core.Request{
		Program:  loops.TwoIndexFused(35000, 40000),
		Machine:  cfg,
		Strategy: core.DCS,
		Seed:     1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("T:", s.Assign.Selected["T"].Label)
	fmt.Println("feasible:", s.Plan.MemoryBytes() <= cfg.MemoryLimit)
	// Output:
	// T: in memory
	// feasible: true
}

// ExampleSynthesize_verify runs synthesized code on the simulated disk
// and verifies it against a direct evaluation.
func ExampleSynthesize_verify() {
	prog := loops.TwoIndexFused(12, 16)
	s, err := core.Synthesize(core.Request{
		Program:  prog,
		Machine:  machine.Small(4 << 10),
		Strategy: core.DCS,
		Seed:     1,
		MaxEvals: 20000,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	c := expr.TwoIndexTransform(12, 16)
	inputs := expr.RandomInputs(c, 42)
	outputs, _, err := s.RunSim(inputs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	want, _ := expr.EvalDirect(c, inputs)
	diff := 0.0
	for i, v := range outputs["B"].Data() {
		if d := v - want.Data()[i]; d > diff {
			diff = d
		} else if -d > diff {
			diff = -d
		}
	}
	fmt.Println("verified:", diff < 1e-9)
	// Output:
	// verified: true
}

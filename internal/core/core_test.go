package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

func fig4Request(strategy Strategy) Request {
	cfg := machine.OSCItanium2()
	cfg.MemoryLimit = 1 * machine.GB
	return Request{
		Program:  loops.TwoIndexFused(35000, 40000),
		Machine:  cfg,
		Strategy: strategy,
		Seed:     1,
	}
}

func TestSynthesizeDCSFig4(t *testing.T) {
	s, err := Synthesize(fig4Request(DCS))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Problem.Feasible(s.X) {
		t.Fatal("DCS synthesis returned infeasible assignment")
	}
	if s.Plan.MemoryBytes() > s.Request.Machine.MemoryLimit {
		t.Fatalf("plan memory %d exceeds limit", s.Plan.MemoryBytes())
	}
	// The paper's Fig. 4 solution keeps T in memory.
	if !s.Assign.Selected["T"].InMemory {
		t.Errorf("expected T in memory, got %q", s.Assign.Selected["T"].Label)
	}
	if s.GenTime <= 0 || s.SolverEvals <= 0 {
		t.Fatal("bookkeeping missing")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(fig4Request(DCS))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(fig4Request(DCS))
	if err != nil {
		t.Fatal(err)
	}
	if a.Predicted() != b.Predicted() {
		t.Fatalf("non-deterministic synthesis: %g vs %g", a.Predicted(), b.Predicted())
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("decision vectors differ at %d", i)
		}
	}
}

func TestPredictedMatchesMeasuredFig4(t *testing.T) {
	// Table 3's headline property: predicted and measured disk I/O times
	// agree (our simulator shares the cost model modulo partial-tile
	// padding, so within a few percent).
	for _, strat := range []Strategy{DCS, UniformSampling} {
		req := fig4Request(strat)
		req.Sampling = sampling.Options{MaxCombos: 100000}
		s, err := Synthesize(req)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.MeasureSim()
		if err != nil {
			t.Fatal(err)
		}
		measured := st.Time()
		predicted := s.Predicted()
		if measured > predicted*1.000001 {
			t.Fatalf("%v: measured %.1f exceeds predicted %.1f", strat, measured, predicted)
		}
		if measured < predicted*0.7 {
			t.Fatalf("%v: measured %.1f far below predicted %.1f — model mismatch", strat, measured, predicted)
		}
	}
}

func TestDCSBeatsUniformSamplingOnFig4(t *testing.T) {
	dcsS, err := Synthesize(fig4Request(DCS))
	if err != nil {
		t.Fatal(err)
	}
	req := fig4Request(UniformSampling)
	req.Sampling = sampling.Options{MaxCombos: 1000000}
	us, err := Synthesize(req)
	if err != nil {
		t.Fatal(err)
	}
	if dcsS.Predicted() > us.Predicted()*1.05 {
		t.Fatalf("DCS %.1f s worse than uniform sampling %.1f s", dcsS.Predicted(), us.Predicted())
	}
}

func TestSynthesizedCodeComputesCorrectResult(t *testing.T) {
	// End-to-end: synthesize for a small machine and verify numerics on
	// both backends for all strategies.
	nmn, nij := int64(12), int64(16)
	prog := loops.TwoIndexFused(nmn, nij)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(nmn, nij), 5)
	want, err := loops.Interpret(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{DCS, UniformSampling, DCSConstrainedAnnealing, RandomSearch} {
		s, err := Synthesize(Request{
			Program:  prog.Clone(),
			Machine:  machine.Small(4 << 10),
			Strategy: strat,
			Seed:     2,
			MaxEvals: 20000,
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		got, stats, err := s.RunSim(inputs)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if d := tensor.MaxAbsDiff(got["B"], want["B"]); d > 1e-9 {
			t.Fatalf("%v: result differs by %g", strat, d)
		}
		if stats.ReadOps == 0 {
			t.Fatalf("%v: no I/O recorded", strat)
		}
	}
}

func TestRunFiles(t *testing.T) {
	nmn, nij := int64(10), int64(10)
	prog := loops.TwoIndexFused(nmn, nij)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(nmn, nij), 6)
	want, err := loops.Interpret(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Synthesize(Request{
		Program:  prog.Clone(),
		Machine:  machine.Small(4 << 10),
		Strategy: DCS,
		Seed:     3,
		MaxEvals: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.RunFiles(t.TempDir(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got["B"], want["B"]); d > 1e-9 {
		t.Fatalf("file-backed run differs by %g", d)
	}
}

func TestFourIndexSynthesis(t *testing.T) {
	// The paper's experimental workload at (140,120): T1 must spill to
	// disk; the synthesis must be feasible under 2 GB.
	s, err := Synthesize(Request{
		Program:  loops.FourIndexAbstract(140, 120),
		Machine:  machine.OSCItanium2(),
		Strategy: DCS,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Assign.Selected["T1"].InMemory {
		t.Fatal("T1 cannot fit in memory at paper scale")
	}
	if s.Plan.MemoryBytes() > machine.OSCItanium2().MemoryLimit {
		t.Fatalf("memory %d over limit", s.Plan.MemoryBytes())
	}
	st, err := s.MeasureSim()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Time()-s.Predicted())/s.Predicted() > 0.3 {
		t.Fatalf("measured %.1f vs predicted %.1f diverge", st.Time(), s.Predicted())
	}
}

func TestAMPLAndSummary(t *testing.T) {
	s, err := Synthesize(fig4Request(DCS))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.AMPL(), "minimize disk_io_cost") {
		t.Fatal("AMPL output malformed")
	}
	sum := s.Summary()
	for _, want := range []string{"DCS", "predicted disk I/O time", "buffer memory"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(Request{}); err == nil {
		t.Error("nil program must error")
	}
	req := fig4Request(DCS)
	req.Machine.MemoryLimit = 0
	if _, err := Synthesize(req); err == nil {
		t.Error("invalid machine must error")
	}
	req = fig4Request(Strategy(99))
	if _, err := Synthesize(req); err == nil {
		t.Error("unknown strategy must error")
	}
	// Memory so tight no placement exists.
	req = fig4Request(DCS)
	req.Machine.MemoryLimit = 16
	if _, err := Synthesize(req); err == nil {
		t.Error("impossible memory limit must error")
	}
	if Strategy(99).String() == "" || DCS.String() != "DCS" {
		t.Error("Strategy.String wrong")
	}
}

func TestInfeasibleBudgetReported(t *testing.T) {
	// Feasible placements exist at tile-one, but the min-block constraint
	// cannot be satisfied together with a tiny memory limit → the solver
	// must report infeasibility as an error.
	cfg := machine.Small(1 << 20)
	cfg.Disk.MinReadBlock = 16 * machine.MB
	cfg.Disk.MinWriteBlock = 16 * machine.MB
	_, err := Synthesize(Request{
		Program:  loops.TwoIndexFused(2000, 2000),
		Machine:  cfg,
		Strategy: DCS,
		Seed:     5,
		MaxEvals: 5000,
	})
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}

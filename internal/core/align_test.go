package core

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/disk"
	"repro/internal/exec"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/nlp"
	"repro/internal/placement"
	"repro/internal/tiling"
	"repro/internal/trace"
)

func fig4ProblemForAlign(t *testing.T) *nlp.Problem {
	t.Helper()
	prog := loops.TwoIndexFused(35000, 40000)
	tree, err := tiling.Tile(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.OSCItanium2()
	cfg.MemoryLimit = 1 * machine.GB
	// Drop the block-size constraints so deliberately scattered (small)
	// tiles are representable; alignment is the mechanism under test.
	cfg.Disk.MinReadBlock = 0
	cfg.Disk.MinWriteBlock = 0
	m, err := placement.Enumerate(tree, cfg, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nlp.Build(m)
}

func TestAlignLastDimTilesRaisesTiles(t *testing.T) {
	p := fig4ProblemForAlign(t)
	// Small last-dim tiles: j (last dim of A, C2), i (last of C1, T),
	// n (last of B).
	x := p.Encode(map[string]int64{"i": 64, "j": 64, "m": 2000, "n": 2000}, nil)
	if !p.Feasible(x) {
		t.Fatal("starting point must be feasible")
	}
	aligned := AlignLastDimTiles(p, x, 1024)
	if !p.Feasible(aligned) {
		t.Fatal("alignment must preserve feasibility")
	}
	a := p.Decode(aligned)
	for _, idx := range []string{"i", "j", "n"} {
		if a.Tiles[idx] < 512 {
			t.Fatalf("tile %s = %d, expected raised toward 1024", idx, a.Tiles[idx])
		}
	}
	// m indexes no array's last dimension; it must be untouched.
	if a.Tiles["m"] != 2000 {
		t.Fatalf("tile m changed to %d", a.Tiles["m"])
	}
}

func TestAlignLastDimTilesNoopWhenLarge(t *testing.T) {
	p := fig4ProblemForAlign(t)
	x := p.Encode(map[string]int64{"i": 4000, "j": 4000, "m": 4000, "n": 4000}, nil)
	aligned := AlignLastDimTiles(p, x, 1024)
	for i := range x {
		if aligned[i] != x[i] {
			t.Fatalf("alignment changed an already-aligned assignment at %d", i)
		}
	}
}

func TestAlignmentReducesRunAwareTime(t *testing.T) {
	// Execute the same program with scattered vs aligned tiles and compare
	// the refined seek-per-run time: alignment must win decisively.
	prog := loops.TwoIndexFused(400, 512)
	cfg := machine.Small(8 << 20)
	cfg.Disk = machine.OSCItanium2().Disk
	cfg.Disk.MinReadBlock = 0
	cfg.Disk.MinWriteBlock = 0
	tree, err := tiling.Tile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := placement.Enumerate(tree, cfg, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := nlp.Build(m)

	runAware := func(x []int64) float64 {
		plan, err := codegen.Generate(p, x)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.New(disk.NewSim(cfg.Disk, false))
		defer rec.Close()
		if _, err := exec.Run(plan, rec, nil, exec.Options{DryRun: true}); err != nil {
			t.Fatal(err)
		}
		dims := map[string][]int64{}
		for _, da := range plan.DiskArrays {
			dims[da.Name] = da.Dims
		}
		return trace.RunAwareTime(rec.Ops(), dims, cfg.Disk)
	}

	scattered := p.Encode(map[string]int64{"i": 200, "j": 8, "m": 200, "n": 8}, nil)
	aligned := AlignLastDimTiles(p, scattered, 512)
	ts, ta := runAware(scattered), runAware(aligned)
	if ta >= ts {
		t.Fatalf("alignment did not reduce run-aware time: %.2f vs %.2f", ta, ts)
	}
	if ts/ta < 2 {
		t.Fatalf("expected a decisive improvement, got %.2f vs %.2f", ts, ta)
	}
}

func TestRunsCounting(t *testing.T) {
	dims := []int64{10, 20, 30}
	cases := []struct {
		shape []int64
		want  int64
	}{
		{[]int64{10, 20, 30}, 1}, // whole array: one run
		{[]int64{2, 20, 30}, 1},  // full trailing dims merge
		{[]int64{2, 5, 30}, 2},   // full last dim: 5 consecutive rows merge per i0
		{[]int64{2, 5, 7}, 10},   // partial last dim: 2×5 rows
		{[]int64{1, 1, 1}, 1},    // single element
	}
	for _, c := range cases {
		if got := trace.Runs(dims, c.shape); got != c.want {
			t.Errorf("Runs(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

package core

import (
	"context"
	"testing"

	"repro/internal/dcs"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/obs"
)

// TestSynthesizeOptsObservability checks the observability options:
// WithConvergence records the solver curve, WithObserver streams the same
// events, WithMetrics collects solver counters during synthesis and disk
// counters during the execution helpers.
func TestSynthesizeOptsObservability(t *testing.T) {
	prog := loops.TwoIndexFused(40, 60)
	cfg := machine.Small(256 << 10)

	curve := &obs.Convergence{}
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	var seen []dcs.Event
	s, err := SynthesizeOpts(context.Background(), prog,
		WithMachine(cfg), WithSeed(7), WithMaxEvals(4000),
		WithConvergence(curve),
		WithObserver(func(e dcs.Event) { seen = append(seen, e) }),
		WithMetrics(reg), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}

	// The curve and the observer both received the full stream, ending in
	// a final event whose objective is the synthesized plan's prediction.
	final, ok := curve.Final()
	if !ok {
		t.Fatal("no final solver event recorded")
	}
	if final.Best != s.Predicted() {
		t.Fatalf("final best %g != predicted %g", final.Best, s.Predicted())
	}
	if len(seen) != len(curve.Events()) {
		t.Fatalf("observer saw %d events, curve recorded %d", len(seen), len(curve.Events()))
	}
	if got := reg.Counter("dcs.evals").Value(); got != s.SolverEvals {
		t.Fatalf("dcs.evals counter %d != SolverEvals %d", got, s.SolverEvals)
	}

	// The execution helpers attach the registry and tracer: a dry-run
	// measurement publishes disk counters matching its Stats and a disk
	// track matching the modelled time.
	res, err := s.MeasureSimFull()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["disk.read.ops"]; got != res.Stats.ReadOps {
		t.Fatalf("disk.read.ops %d != Stats.ReadOps %d", got, res.Stats.ReadOps)
	}
	if got := snap.Counters["disk.write.bytes"]; got != res.Stats.BytesWritten {
		t.Fatalf("disk.write.bytes %d != Stats.BytesWritten %d", got, res.Stats.BytesWritten)
	}
	if tr.TrackSeconds(obs.TrackDisk) <= 0 {
		t.Fatal("measurement left no disk-track spans")
	}
}

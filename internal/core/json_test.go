package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONExportRoundTrips(t *testing.T) {
	s, err := Synthesize(fig4Request(DCS))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SynthesisJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, raw)
	}
	if back.Strategy != "DCS" {
		t.Fatalf("strategy = %q", back.Strategy)
	}
	if back.PredictedSeconds != s.Predicted() {
		t.Fatalf("predicted = %g, want %g", back.PredictedSeconds, s.Predicted())
	}
	if back.MemoryBytes != s.Plan.MemoryBytes() {
		t.Fatal("memory mismatch")
	}
	if len(back.Tiles) != 4 {
		t.Fatalf("tiles = %v", back.Tiles)
	}
	if len(back.Placements) != 5 {
		t.Fatalf("placements = %v", back.Placements)
	}
	if len(back.DiskArrays) != 4 {
		t.Fatalf("disk arrays = %v", back.DiskArrays)
	}
	// Deterministic array order (sorted by name).
	for i := 1; i < len(back.DiskArrays); i++ {
		if back.DiskArrays[i].Name < back.DiskArrays[i-1].Name {
			t.Fatal("disk arrays not sorted")
		}
	}
	if !strings.Contains(back.ConcreteCode, "Read ADisk") {
		t.Fatal("concrete code missing")
	}
	// B must be flagged as needing zero-init (read-modify-write output).
	for _, da := range back.DiskArrays {
		if da.Name == "B" && !da.NeedsInit {
			t.Fatal("B should need zero-init")
		}
		if da.Name == "A" && da.Kind != "input" {
			t.Fatalf("A kind = %q", da.Kind)
		}
	}
}

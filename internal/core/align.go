package core

import (
	"sort"

	"repro/internal/nlp"
)

// AlignLastDimTiles applies the spatial-locality adjustment of the
// synthesis lineage (Cociorva et al.): after the solver has chosen tile
// sizes, the tile of every loop that indexes the fastest-varying (last)
// dimension of any array is raised to at least minRun elements, provided
// the adjusted assignment remains feasible. Larger last-dimension tiles
// make every disk section span long contiguous runs, which the refined
// seek-per-run disk model (trace.RunAwareTime) rewards.
//
// The adjustment is greedy and conservative: indexes are processed in
// sorted order; for each, the largest target ≤ min(range, minRun) that
// keeps the assignment feasible is kept (halving on failure, reverting if
// even the original fails — which cannot happen for a feasible input).
func AlignLastDimTiles(prob *nlp.Problem, x []int64, minRun int64) []int64 {
	out := append([]int64(nil), x...)

	// Collect the loop indices that appear as the last (fastest-varying)
	// dimension of some array.
	lastDims := map[string]bool{}
	for _, arr := range prob.Model.Prog.Arrays {
		if n := len(arr.OrigIndices); n > 0 {
			lastDims[arr.OrigIndices[n-1]] = true
		}
	}
	var names []string
	for name := range lastDims {
		names = append(names, name)
	}
	sort.Strings(names)

	pos := map[string]int{}
	for i, v := range prob.TileVars {
		pos[v] = i
	}
	for _, name := range names {
		i, ok := pos[name]
		if !ok {
			continue
		}
		_, hi := prob.Bounds(i)
		target := minRun
		if target > hi {
			target = hi
		}
		if out[i] >= target {
			continue
		}
		orig := out[i]
		for t := target; t > orig; t /= 2 {
			out[i] = t
			if prob.Feasible(out) {
				break
			}
			out[i] = orig
		}
	}
	return out
}

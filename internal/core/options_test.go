package core

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
)

// TestSynthesizeOptsMatchesRequest checks the functional-options entry
// point is a faithful mapping onto the frozen Request path.
func TestSynthesizeOptsMatchesRequest(t *testing.T) {
	prog := loops.TwoIndexFused(40, 60)
	cfg := machine.Small(256 << 10)
	req := Request{Program: prog, Machine: cfg, Strategy: DCS, Seed: 7, MaxEvals: 4000}
	want, err := Synthesize(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SynthesizeOpts(context.Background(), prog,
		WithMachine(cfg), WithStrategy(DCS), WithSeed(7), WithMaxEvals(4000))
	if err != nil {
		t.Fatal(err)
	}
	if got.Predicted() != want.Predicted() {
		t.Fatalf("options path predicted %.6f, request path %.6f", got.Predicted(), want.Predicted())
	}
	if len(got.X) != len(want.X) {
		t.Fatalf("solution lengths differ: %d vs %d", len(got.X), len(want.X))
	}
	for i := range got.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, got.X, want.X)
		}
	}
}

// TestSynthesizeOptsPipelineBitIdentical checks WithPipeline switches the
// run helpers to the asynchronous engine without changing a single bit of
// the result.
func TestSynthesizeOptsPipelineBitIdentical(t *testing.T) {
	nmn, nij := int64(6), int64(8)
	prog := loops.TwoIndexFused(nmn, nij)
	cfg := machine.Small(16 << 10)
	inputs := expr.RandomInputs(expr.TwoIndexTransform(nmn, nij), 5)

	serial, err := SynthesizeOpts(context.Background(), prog,
		WithMachine(cfg), WithSeed(3), WithMaxEvals(3000))
	if err != nil {
		t.Fatal(err)
	}
	piped, err := SynthesizeOpts(context.Background(), prog,
		WithMachine(cfg), WithSeed(3), WithMaxEvals(3000), WithPipeline(0))
	if err != nil {
		t.Fatal(err)
	}
	if !piped.Pipeline {
		t.Fatal("WithPipeline must mark the synthesis")
	}
	wantOut, _, err := serial.RunSim(inputs)
	if err != nil {
		t.Fatal(err)
	}
	gotOut, _, err := piped.RunSim(inputs)
	if err != nil {
		t.Fatal(err)
	}
	g, w := gotOut["B"].Data(), wantOut["B"].Data()
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("element %d: pipelined %v != serial %v", i, g[i], w[i])
		}
	}
	// The pipelined dry run reports the overlap timeline.
	res, err := piped.MeasureSimFull()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline == nil {
		t.Fatal("pipelined MeasureSimFull must report PipelineStats")
	}
	if res.Pipeline.OverlappedSeconds > res.Pipeline.SerialSeconds+1e-12 {
		t.Fatal("overlapped critical path cannot exceed the serial one")
	}
	sres, err := serial.MeasureSimFull()
	if err != nil {
		t.Fatal(err)
	}
	if sres.Pipeline != nil {
		t.Fatal("serial MeasureSimFull must not report PipelineStats")
	}
	if sres.Stats.ReadOps != 0 || sres.Stats.BytesRead != 0 {
		// Byte totals must agree between the engines.
		pr, sr := res.Stats, sres.Stats
		if pr.BytesRead != sr.BytesRead || pr.BytesWritten != sr.BytesWritten ||
			pr.ReadOps != sr.ReadOps || pr.WriteOps != sr.WriteOps {
			t.Fatalf("pipelined I/O counts %v != serial %v", pr, sr)
		}
	}
}

// TestSynthesizeContextCancelled checks caller cancellation aborts the
// synthesis with an error (unlike MaxTime, which degrades gracefully).
func TestSynthesizeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SynthesizeOpts(ctx, loops.TwoIndexFused(40, 60), WithMachine(machine.Small(256<<10)))
	if err == nil {
		t.Fatal("cancelled synthesis must fail")
	}
}

// TestMaxTimeStillSynthesizes checks the MaxTime budget degrades
// gracefully: a tight deadline still yields a feasible synthesis.
func TestMaxTimeStillSynthesizes(t *testing.T) {
	s, err := SynthesizeOpts(context.Background(), loops.TwoIndexFused(40, 60),
		WithMachine(machine.Small(256<<10)), WithSeed(1), WithMaxTime(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan == nil {
		t.Fatal("expected a plan under a time budget")
	}
}

package core

import (
	"encoding/json"
	"sort"
)

// SynthesisJSON is the machine-readable view of a synthesis result,
// exported for tooling (dashboards, regression tracking, external
// schedulers).
type SynthesisJSON struct {
	Program             string            `json:"program"`
	Strategy            string            `json:"strategy"`
	Seed                int64             `json:"seed"`
	GenTimeSeconds      float64           `json:"gen_time_seconds"`
	SolverEvals         int64             `json:"solver_evals"`
	PredictedSeconds    float64           `json:"predicted_io_seconds"`
	PredictedReadBytes  float64           `json:"predicted_read_bytes"`
	PredictedWriteBytes float64           `json:"predicted_write_bytes"`
	MemoryBytes         int64             `json:"buffer_memory_bytes"`
	MemoryLimit         int64             `json:"memory_limit_bytes"`
	Tiles               map[string]int64  `json:"tile_sizes"`
	Placements          map[string]string `json:"placements"`
	DiskArrays          []DiskArrayJSON   `json:"disk_arrays"`
	ConcreteCode        string            `json:"concrete_code"`
}

// DiskArrayJSON describes one disk-resident array of the plan.
type DiskArrayJSON struct {
	Name      string  `json:"name"`
	Dims      []int64 `json:"dims"`
	Kind      string  `json:"kind"`
	NeedsInit bool    `json:"needs_zero_init"`
}

// Export builds the JSON view.
func (s *Synthesis) Export() SynthesisJSON {
	out := SynthesisJSON{
		Program:             s.Request.Program.Name,
		Strategy:            s.Request.Strategy.String(),
		Seed:                s.Request.Seed,
		GenTimeSeconds:      s.GenTime.Seconds(),
		SolverEvals:         s.SolverEvals,
		PredictedSeconds:    s.Predicted(),
		PredictedReadBytes:  s.Plan.PredictedReadBytes,
		PredictedWriteBytes: s.Plan.PredictedWriteBytes,
		MemoryBytes:         s.Plan.MemoryBytes(),
		MemoryLimit:         s.Request.Machine.MemoryLimit,
		Tiles:               s.Assign.Tiles,
		Placements:          map[string]string{},
		ConcreteCode:        s.Plan.String(),
	}
	for name, c := range s.Assign.Selected {
		out.Placements[name] = c.Label
	}
	for _, da := range s.Plan.DiskArrays {
		out.DiskArrays = append(out.DiskArrays, DiskArrayJSON{
			Name:      da.Name,
			Dims:      da.Dims,
			Kind:      da.Kind.String(),
			NeedsInit: da.NeedsInit,
		})
	}
	sort.Slice(out.DiskArrays, func(i, j int) bool { return out.DiskArrays[i].Name < out.DiskArrays[j].Name })
	return out
}

// JSON marshals the synthesis result (indented).
func (s *Synthesis) JSON() ([]byte, error) {
	return json.MarshalIndent(s.Export(), "", "  ")
}

package core

import (
	"fmt"

	"repro/internal/loops"
)

// Flops returns the exact floating-point operation count of an abstract
// program: for every accumulation statement, 2·(factors−1)+1 ≈ 2·factors
// operations per iteration of its full loop space (one multiply per extra
// factor plus the accumulate add; we charge 2 per factor for the
// multiply-add convention).
func Flops(p *loops.Program) float64 {
	total := 0.0
	for _, site := range p.Statements() {
		space := 1.0
		for _, l := range site.Path {
			space *= float64(p.Ranges[l.Index])
		}
		total += space * float64(2*len(site.Stmt.Factors))
	}
	return total
}

// ComputeSeconds returns the modelled in-memory compute time of the
// synthesized program (0 if the machine has no flop rate).
func (s *Synthesis) ComputeSeconds() float64 {
	if s.Request.Machine.FlopRate <= 0 {
		return 0
	}
	return Flops(s.Request.Program) / s.Request.Machine.FlopRate
}

// Balance classifies the synthesized code against the machine: the ratio
// of disk I/O time to compute time, and the total-time lower bound if I/O
// were perfectly overlapped with computation (max of the two) versus the
// serial sum.
type Balance struct {
	IOSeconds      float64
	ComputeSeconds float64
	// Serial is I/O + compute; Overlapped is max(I/O, compute) — what
	// perfect prefetching/double-buffering could achieve at best.
	Serial     float64
	Overlapped float64
	// IOBound reports whether disk I/O dominates.
	IOBound bool
}

// Balance computes the I/O-vs-compute balance of the synthesis.
func (s *Synthesis) Balance() Balance {
	io := s.Predicted()
	comp := s.ComputeSeconds()
	b := Balance{
		IOSeconds:      io,
		ComputeSeconds: comp,
		Serial:         io + comp,
		Overlapped:     io,
		IOBound:        io >= comp,
	}
	if comp > io {
		b.Overlapped = comp
	}
	return b
}

func (b Balance) String() string {
	kind := "I/O-bound"
	if !b.IOBound {
		kind = "compute-bound"
	}
	return fmt.Sprintf("%s: I/O %.1f s, compute %.1f s; serial %.1f s, overlapped ≥ %.1f s",
		kind, b.IOSeconds, b.ComputeSeconds, b.Serial, b.Overlapped)
}

package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/tensor"
)

// TestAutoFusePipeline runs the complete front-to-back pipeline on an
// arbitrary contraction spec: parse → operation minimization → lowering →
// greedy fusion → tiling → placement → DCS → codegen → out-of-core
// execution → numerical verification.
func TestAutoFusePipeline(t *testing.T) {
	ranges := map[string]int64{"i": 6, "j": 5, "k": 7, "l": 4, "m": 5}
	c := expr.MustParse("Y[i,m] = A[i,j] * B[j,k] * C[k,l] * D[l,m]", ranges)
	plan := expr.MustMinimize(c, "T")
	prog, err := loops.FromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	inputs := expr.RandomInputs(c, 77)
	want, err := expr.EvalDirect(c, inputs)
	if err != nil {
		t.Fatal(err)
	}

	for _, fuse := range []bool{false, true} {
		s, err := Synthesize(Request{
			Program:  prog.Clone(),
			Machine:  machine.Small(2 << 10),
			Strategy: DCS,
			Seed:     9,
			MaxEvals: 40000,
			AutoFuse: fuse,
		})
		if err != nil {
			t.Fatalf("fuse=%v: %v", fuse, err)
		}
		got, _, err := s.RunSim(inputs)
		if err != nil {
			t.Fatalf("fuse=%v: %v", fuse, err)
		}
		if d := tensor.MaxAbsDiff(got["Y"], want); d > 1e-9 {
			t.Fatalf("fuse=%v: result differs by %g", fuse, d)
		}
	}
}

// TestAutoFuseReducesCost checks that fusion lowers (or at least never
// raises) the synthesized I/O cost on a memory-starved machine, the
// motivation of Fig. 1.
func TestAutoFuseReducesCost(t *testing.T) {
	// Large unfused two-index transform: T(n,i) is a full N×N intermediate
	// that must round-trip disk without fusion.
	prog := loops.TwoIndexUnfused(3000, 3500)
	cfg := machine.Small(1 << 20)
	cfg.Disk = machine.OSCItanium2().Disk
	cfg.Disk.MinReadBlock = 0
	cfg.Disk.MinWriteBlock = 0

	base, err := Synthesize(Request{Program: prog.Clone(), Machine: cfg, Strategy: DCS, Seed: 3, MaxEvals: 80000})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Synthesize(Request{Program: prog.Clone(), Machine: cfg, Strategy: DCS, Seed: 3, MaxEvals: 80000, AutoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Predicted() > base.Predicted()*1.01 {
		t.Fatalf("fusion raised predicted cost: %.2f → %.2f", base.Predicted(), fused.Predicted())
	}
	// The fused program keeps T entirely in (tile) memory.
	if c := fused.Assign.Selected["T"]; c != nil && !c.InMemory {
		t.Fatalf("fused T should be in memory, got %q", c.Label)
	}
}

package placement

import (
	"math"
	"strings"
	"testing"

	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/tiling"
)

func fig4Model(t *testing.T) *Model {
	t.Helper()
	// The Fig. 4 configuration: N_m=N_n=35000, N_i=N_j=40000, 1 GB limit.
	p := loops.TwoIndexFused(35000, 40000)
	tree, err := tiling.Tile(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.OSCItanium2()
	cfg.MemoryLimit = 1 * machine.GB
	m, err := Enumerate(tree, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func choiceByName(t *testing.T, m *Model, name string) Choice {
	t.Helper()
	for _, ch := range m.Choices {
		if ch.Name == name {
			return ch
		}
	}
	t.Fatalf("no choice named %q in model:\n%s", name, m)
	return Choice{}
}

func TestFig4CandidateCounts(t *testing.T) {
	// The paper's Fig. 4(a) lists exactly two candidate placements for each
	// of A, C1, C2, and B, and the in-memory/disk alternatives for T.
	m := fig4Model(t)
	for _, name := range []string{"A", "C1", "C2", "B"} {
		ch := choiceByName(t, m, name)
		if len(ch.Candidates) != 2 {
			t.Errorf("%s has %d candidates, want 2:\n%s", name, len(ch.Candidates), m)
		}
	}
	ch := choiceByName(t, m, "T")
	if !ch.Candidates[0].InMemory {
		t.Errorf("T's first candidate should be in-memory:\n%s", m)
	}
	if len(ch.Candidates) < 2 {
		t.Errorf("T should also have at least one disk candidate:\n%s", m)
	}
}

func evalTerm(tm Term, tiles map[string]int64, ranges map[string]int64) float64 {
	return tm.Eval(tiles, ranges)
}

func TestFig4CostExpressionsForA(t *testing.T) {
	// Sec. 4.2 derives for input A the two placements with disk costs
	// D1 = (N_n/T_n) × Size_A (leaf) and D2 = Size_A (above nT), and
	// memory costs M1 = T_i×T_j and M2 = T_i×N_j.
	m := fig4Model(t)
	ch := choiceByName(t, m, "A")
	ranges := m.Prog.Ranges
	tiles := map[string]int64{"i": 100, "j": 200, "m": 50, "n": 70}
	sizeA := float64(ranges["i"]*ranges["j"]) * 8

	var leaf, upper *Candidate
	for i := range ch.Candidates {
		c := &ch.Candidates[i]
		if c.Read.Pos.Label == "leaf" {
			leaf = c
		} else {
			upper = c
		}
	}
	if leaf == nil || upper == nil {
		t.Fatalf("A candidates missing leaf/upper: %s", m)
	}

	// Leaf: cost = ceil(Nn/Tn) × padded Size_A; with dividing tiles this is
	// exactly (Nn/Tn) × Size_A.
	got := evalTerm(leaf.Read.Bytes, tiles, ranges)
	want := float64(ranges["n"]/tiles["n"]) * sizeA
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("leaf read cost = %g, want %g", got, want)
	}
	gotMem := evalTerm(leaf.Read.Buf.Bytes, tiles, ranges)
	wantMem := float64(tiles["i"]*tiles["j"]) * 8
	if gotMem != wantMem {
		t.Errorf("leaf buffer = %g, want TiTj = %g", gotMem, wantMem)
	}

	// Upper (above nT): cost = Size_A, buffer = T_i × N_j.
	if upper.Read.Pos.Label != "above nT" {
		t.Errorf("upper placement label = %q, want 'above nT'", upper.Read.Pos.Label)
	}
	got = evalTerm(upper.Read.Bytes, tiles, ranges)
	if math.Abs(got-sizeA)/sizeA > 1e-12 {
		t.Errorf("upper read cost = %g, want Size_A = %g", got, sizeA)
	}
	gotMem = evalTerm(upper.Read.Buf.Bytes, tiles, ranges)
	wantMem = float64(tiles["i"]*ranges["j"]) * 8
	if gotMem != wantMem {
		t.Errorf("upper buffer = %g, want Ti×Nj = %g", gotMem, wantMem)
	}
}

func TestFig4OutputBRequiresRead(t *testing.T) {
	// Fig. 4(a): both write placements for B require a read (the summation
	// loop i is redundant for B and surrounds any legal write position).
	m := fig4Model(t)
	ch := choiceByName(t, m, "B")
	for _, c := range ch.Candidates {
		if !c.RMWRead {
			t.Errorf("B candidate %q does not require a read", c.Label)
		}
		if c.InitZero == nil {
			t.Errorf("B candidate %q has no init pass", c.Label)
		}
	}
}

func TestFig4TInMemoryBufferIsTileSized(t *testing.T) {
	// The fused scalar T re-expands to a T_n×T_i tile buffer (T[jI,nI] in
	// Fig. 4(b)).
	m := fig4Model(t)
	ch := choiceByName(t, m, "T")
	mem := ch.Candidates[0]
	if !mem.InMemory {
		t.Fatal("first T candidate not in-memory")
	}
	tiles := map[string]int64{"i": 100, "j": 200, "m": 50, "n": 70}
	got := evalTerm(mem.MemBuf.Bytes, tiles, m.Prog.Ranges)
	want := float64(tiles["n"]*tiles["i"]) * 8
	if got != want {
		t.Fatalf("T in-memory buffer = %g, want Tn×Ti = %g (dims %s)", got, want, mem.MemBuf)
	}
}

func TestIntermediateDiskCandidatesStayInsideLCA(t *testing.T) {
	m := fig4Model(t)
	ch := choiceByName(t, m, "T")
	for _, c := range ch.Candidates {
		if c.InMemory {
			continue
		}
		if c.Write.Pos.Depth < 2 || c.Read.Pos.Depth < 2 {
			t.Errorf("disk candidate %q escapes the LCA (depths %d/%d)", c.Label, c.Write.Pos.Depth, c.Read.Pos.Depth)
		}
	}
}

func TestPlacementVarCount(t *testing.T) {
	m := fig4Model(t)
	// A, C1, C2, B have 2 candidates each → 1 bit each. T has ≥2 → ≥1 bit.
	if got := m.PlacementVarCount(); got < 5 {
		t.Fatalf("PlacementVarCount = %d, want ≥ 5", got)
	}
	if lambdaBits(1) != 0 || lambdaBits(2) != 1 || lambdaBits(3) != 2 || lambdaBits(5) != 3 {
		t.Fatal("lambdaBits wrong")
	}
}

func TestFourIndexEnumerates(t *testing.T) {
	p := loops.FourIndexAbstract(140, 120)
	tree, err := tiling.Tile(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Enumerate(tree, machine.OSCItanium2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 5 inputs + 3 intermediates + 1 output.
	if len(m.Choices) != 9 {
		t.Fatalf("four-index model has %d choices, want 9:\n%s", len(m.Choices), m)
	}
	for _, ch := range m.Choices {
		if len(ch.Candidates) == 0 {
			t.Fatalf("choice %s has no candidates", ch.Name)
		}
	}
	if len(m.TileVars) != 8 {
		t.Fatalf("tile vars = %v, want 8", m.TileVars)
	}
}

func TestFourIndexT1MustGoToDisk(t *testing.T) {
	// T1(a,q,r,s) is unfused: its in-memory buffer spans the full array
	// (~9.9 GB at N=190,V=180), far above the 2 GB limit, so the in-memory
	// candidate must be pruned and only disk candidates remain.
	p := loops.FourIndexAbstract(190, 180)
	tree, err := tiling.Tile(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Enumerate(tree, machine.OSCItanium2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch := choiceByName(t, m, "T1")
	for _, c := range ch.Candidates {
		if c.InMemory {
			t.Fatalf("T1 offered in-memory candidate despite exceeding the memory limit")
		}
	}
	if len(ch.Candidates) == 0 {
		t.Fatal("T1 has no disk candidates")
	}
}

func TestFourIndexScalarIntermediatesStayInMemory(t *testing.T) {
	// T2 is fused to a scalar: its buffer is one element per tile point
	// (T_a×T_b×T_r×T_s); in-memory must be offered.
	p := loops.FourIndexAbstract(140, 120)
	tree, _ := tiling.Tile(p)
	m, err := Enumerate(tree, machine.OSCItanium2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch := choiceByName(t, m, "T2")
	if !ch.Candidates[0].InMemory {
		t.Fatalf("T2 should offer in-memory first:\n%s", m)
	}
}

func TestEnumerateFailsWhenMemoryTooSmall(t *testing.T) {
	p := loops.TwoIndexFused(100, 100)
	tree, _ := tiling.Tile(p)
	cfg := machine.Small(4) // 4 bytes: not even one element
	if _, err := Enumerate(tree, cfg, Options{}); err == nil {
		t.Fatal("expected error for absurd memory limit")
	}
}

func TestDominancePruningReducesCandidates(t *testing.T) {
	p := loops.FourIndexAbstract(140, 120)
	tree, _ := tiling.Tile(p)
	pruned, err := Enumerate(tree, machine.OSCItanium2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Enumerate(tree, machine.OSCItanium2(), Options{DisableDominancePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	np, nu := 0, 0
	for _, ch := range pruned.Choices {
		np += len(ch.Candidates)
	}
	for _, ch := range unpruned.Choices {
		nu += len(ch.Candidates)
	}
	if np > nu {
		t.Fatalf("pruned model has more candidates (%d) than unpruned (%d)", np, nu)
	}
	if nu == np {
		t.Logf("note: dominance pruning removed nothing on this workload (pruned=%d)", np)
	}
}

func TestModelStringMentionsPlacements(t *testing.T) {
	m := fig4Model(t)
	s := m.String()
	for _, want := range []string{"A (input)", "B (output)", "T (intermediate)", "in memory", "read required"} {
		if !strings.Contains(s, want) {
			t.Fatalf("model dump missing %q:\n%s", want, s)
		}
	}
}

func TestTermEvalAndString(t *testing.T) {
	ranges := map[string]int64{"i": 10, "j": 7}
	tiles := map[string]int64{"i": 3, "j": 2}
	tm := Term{Coeff: 8, Fulls: []string{"j"}, Tiles: []string{"i"}, Trips: []string{"i"}}
	// 8 × N_j × T_i × ceil(10/3) = 8×7×3×4 = 672
	if got := tm.Eval(tiles, ranges); got != 672 {
		t.Fatalf("Eval = %g, want 672", got)
	}
	// tile-one: 8 × 7 × 1 × 10 = 560
	if got := tm.EvalTileOne(ranges); got != 560 {
		t.Fatalf("EvalTileOne = %g, want 560", got)
	}
	s := tm.String()
	for _, want := range []string{"8", "Nj", "Ti", "ceil(Ni/Ti)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Term string missing %q: %s", want, s)
		}
	}
}

func TestTermMulAndScale(t *testing.T) {
	a := Term{Coeff: 2, Tiles: []string{"i"}}
	b := Term{Coeff: 3, Trips: []string{"j"}}
	c := a.Mul(b)
	if c.Coeff != 6 || len(c.Tiles) != 1 || len(c.Trips) != 1 {
		t.Fatalf("Mul wrong: %+v", c)
	}
	if got := a.Scale(5).Coeff; got != 10 {
		t.Fatalf("Scale = %g", got)
	}
	if !Zero().IsZero() || One().IsZero() {
		t.Fatal("Zero/One identities wrong")
	}
}

func TestDividesLE(t *testing.T) {
	// T_i ≤ N_i.
	a := Term{Coeff: 8, Tiles: []string{"i"}}
	b := Term{Coeff: 8, Fulls: []string{"i"}}
	if !DividesLE(a, b) {
		t.Error("T_i should be ≤ N_i")
	}
	if DividesLE(b, a) {
		t.Error("N_i is not guaranteed ≤ T_i")
	}
	// ceil(N_i/T_i) ≤ N_i.
	c := Term{Coeff: 8, Trips: []string{"i"}}
	if !DividesLE(c, b) {
		t.Error("ceil(N/T) should be ≤ N")
	}
	// Identical terms are mutually ≤.
	if !DividesLE(a, a) {
		t.Error("a ≤ a must hold")
	}
	// Coefficients matter.
	big := Term{Coeff: 9, Tiles: []string{"i"}}
	if DividesLE(big, a) {
		t.Error("9Ti is not ≤ 8Ti")
	}
	// Extra factor on a's side → not comparable.
	d := Term{Coeff: 8, Tiles: []string{"i", "j"}}
	if DividesLE(d, a) {
		t.Error("TiTj vs Ti must not be comparable")
	}
}

func TestBufferSpecString(t *testing.T) {
	b := BufferSpec{Dims: []BufDim{{"i", ExtTile}, {"j", ExtFull}, {"k", ExtOne}}}
	if got := b.String(); got != "[iI,j,1]" {
		t.Fatalf("BufferSpec string = %q", got)
	}
}

func TestCandidateTermAccessors(t *testing.T) {
	m := fig4Model(t)
	b := choiceByName(t, m, "B")
	for _, c := range b.Candidates {
		if len(c.WriteBytes()) != 2 { // write + init pass
			t.Fatalf("B candidate %q WriteBytes = %d terms, want 2", c.Label, len(c.WriteBytes()))
		}
		if len(c.ReadBytes()) != 1 { // RMW read
			t.Fatalf("B candidate %q ReadBytes = %d terms, want 1", c.Label, len(c.ReadBytes()))
		}
		if len(c.MemBytes()) != 1 {
			t.Fatalf("B candidate %q MemBytes = %d terms, want 1", c.Label, len(c.MemBytes()))
		}
		if len(c.BlockConstraints()) != 2 { // write block + RMW read block
			t.Fatalf("B candidate %q has %d block constraints, want 2", c.Label, len(c.BlockConstraints()))
		}
		if len(c.ReadOps()) != 1 || len(c.WriteOps()) != 2 {
			t.Fatalf("B candidate %q op-count terms wrong", c.Label)
		}
	}
	a := choiceByName(t, m, "A")
	for _, c := range a.Candidates {
		if len(c.WriteBytes()) != 0 || len(c.ReadBytes()) != 1 {
			t.Fatalf("input A candidate %q has wrong byte terms", c.Label)
		}
	}
}

package placement

import (
	"fmt"
	"strings"

	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/tiling"
)

// ExtentClass classifies one dimension of an in-memory buffer at a
// placement position.
type ExtentClass int

const (
	// ExtOne: the dimension's intra-tile loop is above the position; the
	// buffer holds a single element along it.
	ExtOne ExtentClass = iota
	// ExtTile: the tiling loop is above but the intra-tile loop below; the
	// buffer holds one tile (T_x elements).
	ExtTile
	// ExtFull: both loops are below; the buffer spans the full range N_x.
	ExtFull
)

// BufDim is one dimension of a buffer: the index label and its extent
// class at the chosen position.
type BufDim struct {
	Index string
	Class ExtentClass
}

// BufferSpec describes an in-memory buffer: its dimensions and its size in
// bytes as a symbolic term.
type BufferSpec struct {
	Dims  []BufDim
	Bytes Term
}

// String renders the buffer in the paper's notation, e.g. "A[iI,j]".
func (b BufferSpec) String() string {
	var parts []string
	for _, d := range b.Dims {
		switch d.Class {
		case ExtOne:
			parts = append(parts, "1")
		case ExtTile:
			parts = append(parts, d.Index+"I")
		case ExtFull:
			parts = append(parts, d.Index)
		}
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Position identifies a candidate I/O placement: Depth entries of the
// statement's extended path lie above the I/O statement.
type Position struct {
	Site  tiling.LeafSite
	Depth int
	Label string
}

// IOPlacement is a candidate disk read or write with its symbolic costs:
// Buf is the in-memory buffer, Bytes the total bytes moved over the whole
// computation, Ops the number of I/O operations.
type IOPlacement struct {
	Pos   Position
	Buf   BufferSpec
	Bytes Term
	Ops   Term
	// Redundant lists the loops above the position that do not index the
	// array (they multiply the I/O volume; for writes they force
	// read-modify-write).
	Redundant []tiling.PathEntry
}

// Candidate is one choice of I/O strategy for an array occurrence.
type Candidate struct {
	Array string
	// InMemory: the intermediate is kept entirely in memory (no disk I/O).
	InMemory bool
	// MemBuf is the in-memory buffer of an InMemory intermediate.
	MemBuf *BufferSpec
	// Read is the consumer-side read (inputs, disk intermediates) or nil.
	Read *IOPlacement
	// Write is the producer-side write (outputs, disk intermediates) or nil.
	Write *IOPlacement
	// RMWRead: a redundant loop surrounds the write, so each written tile
	// must first be read back (read-modify-write). The read shares the
	// write buffer and has the write's cost terms.
	RMWRead bool
	// InitZero: the disk array must be written once with zeros before the
	// computation (needed with RMWRead); holds the cost of that pass.
	InitZero *IOPlacement
	Label    string
}

// ReadBytes returns the symbolic byte counts of all reads this candidate
// performs.
func (c *Candidate) ReadBytes() []Term {
	var out []Term
	if c.Read != nil {
		out = append(out, c.Read.Bytes)
	}
	if c.RMWRead {
		out = append(out, c.Write.Bytes)
	}
	return out
}

// WriteBytes returns the symbolic byte counts of all writes.
func (c *Candidate) WriteBytes() []Term {
	var out []Term
	if c.Write != nil {
		out = append(out, c.Write.Bytes)
	}
	if c.InitZero != nil {
		out = append(out, c.InitZero.Bytes)
	}
	return out
}

// ReadOps and WriteOps return the symbolic operation counts.
func (c *Candidate) ReadOps() []Term {
	var out []Term
	if c.Read != nil {
		out = append(out, c.Read.Ops)
	}
	if c.RMWRead {
		out = append(out, c.Write.Ops)
	}
	return out
}

func (c *Candidate) WriteOps() []Term {
	var out []Term
	if c.Write != nil {
		out = append(out, c.Write.Ops)
	}
	if c.InitZero != nil {
		out = append(out, c.InitZero.Ops)
	}
	return out
}

// MemBytes returns the symbolic sizes of all buffers the candidate
// allocates (the static memory model sums them over all arrays).
func (c *Candidate) MemBytes() []Term {
	var out []Term
	if c.MemBuf != nil {
		out = append(out, c.MemBuf.Bytes)
	}
	if c.Read != nil {
		out = append(out, c.Read.Buf.Bytes)
	}
	if c.Write != nil {
		out = append(out, c.Write.Buf.Bytes) // shared with the RMW read
	}
	return out
}

// BlockConstraints returns (buffer, isRead) pairs that must satisfy the
// machine's minimum I/O block sizes when this candidate is selected.
func (c *Candidate) BlockConstraints() []BlockConstraint {
	var out []BlockConstraint
	if c.Read != nil {
		out = append(out, BlockConstraint{Buf: c.Read.Buf.Bytes, IsRead: true})
	}
	if c.Write != nil {
		out = append(out, BlockConstraint{Buf: c.Write.Buf.Bytes, IsRead: false})
		if c.RMWRead {
			out = append(out, BlockConstraint{Buf: c.Write.Buf.Bytes, IsRead: true})
		}
	}
	return out
}

// BlockConstraint requires a buffer to be at least the minimum read or
// write block size.
type BlockConstraint struct {
	Buf    Term
	IsRead bool
}

// LowerBoundSeconds returns an analytic lower bound on the candidate's
// modelled I/O time over all tile assignments (Term.LowerBound applied to
// every cost term). A candidate whose bound exceeds a known solution's
// total objective can never appear in a better solution: the objective is
// a sum of non-negative per-choice costs.
func (c *Candidate) LowerBoundSeconds(ranges map[string]int64, cfg machine.Config) float64 {
	d := cfg.Disk
	total := 0.0
	for _, t := range c.ReadBytes() {
		total += t.LowerBound(ranges) / d.ReadBandwidth
	}
	for _, t := range c.WriteBytes() {
		total += t.LowerBound(ranges) / d.WriteBandwidth
	}
	for _, t := range c.ReadOps() {
		total += t.LowerBound(ranges) * d.SeekTime
	}
	for _, t := range c.WriteOps() {
		total += t.LowerBound(ranges) * d.SeekTime
	}
	return total
}

// Choice is the set of candidates for one array occurrence; exactly one
// candidate must be selected.
type Choice struct {
	// Name identifies the occurrence ("A", or "A@2" when an input is read
	// at several statements).
	Name       string
	Array      *loops.Array
	Candidates []Candidate
}

// Model is the fully enumerated placement space of a tiled program.
type Model struct {
	Prog     *loops.Program
	Tree     *tiling.Tree
	Cfg      machine.Config
	Choices  []Choice
	TileVars []string // sorted distinct loop indices
	// BoundPruned counts candidates discarded by the incumbent lower-bound
	// filter (Options.BoundIncumbent).
	BoundPruned int
}

// Options control the enumeration.
type Options struct {
	// DisableDominancePruning keeps candidates that are dominated (equal
	// or worse I/O bytes and buffer size than another candidate); used by
	// the ablation benchmarks.
	DisableDominancePruning bool
	// BoundIncumbent, when positive, is the objective (seconds) of a known
	// feasible solution: candidates whose analytic cost lower bound
	// already exceeds it are pruned during enumeration, shrinking the
	// cross-product search space of incremental re-solves. Each choice
	// always keeps at least its cheapest-bound candidate.
	BoundIncumbent float64
}

// Enumerate runs the candidate-placement enumeration of Sec. 4.1 over a
// tiled program.
func Enumerate(tree *tiling.Tree, cfg machine.Config, opt Options) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := tree.Prog
	m := &Model{Prog: p, Tree: tree, Cfg: cfg, TileVars: p.SortedIndices()}
	leaves := tree.Leaves()

	producers := map[string][]tiling.LeafSite{}
	consumers := map[string][]tiling.LeafSite{}
	for _, ls := range leaves {
		producers[ls.Leaf.Stmt.Out.Name] = append(producers[ls.Leaf.Stmt.Out.Name], ls)
		seen := map[string]bool{}
		for _, f := range ls.Leaf.Stmt.Factors {
			if !seen[f.Name] {
				seen[f.Name] = true
				consumers[f.Name] = append(consumers[f.Name], ls)
			}
		}
	}

	e := enumerator{p: p, cfg: cfg, opt: opt}
	for _, name := range p.Order {
		arr := p.Arrays[name]
		switch arr.Kind {
		case loops.Input:
			for i, site := range consumers[name] {
				cname := name
				if len(consumers[name]) > 1 {
					cname = fmt.Sprintf("%s@%d", name, i)
				}
				ch, err := e.inputChoice(cname, arr, site)
				if err != nil {
					return nil, err
				}
				m.Choices = append(m.Choices, e.boundFilter(ch, &m.BoundPruned))
			}
		case loops.Output:
			if len(producers[name]) == 0 {
				return nil, fmt.Errorf("placement: output %q is never produced", name)
			}
			multi := len(producers[name]) > 1
			for i, site := range producers[name] {
				cname := name
				if multi {
					cname = fmt.Sprintf("%s@%d", name, i)
				}
				ch, err := e.outputChoice(cname, arr, site, multi, i == 0)
				if err != nil {
					return nil, err
				}
				ch.Name = cname
				m.Choices = append(m.Choices, e.boundFilter(ch, &m.BoundPruned))
			}
		case loops.Intermediate:
			if len(producers[name]) != 1 || len(consumers[name]) != 1 {
				return nil, fmt.Errorf("placement: intermediate %q needs exactly one producer and one consumer statement", name)
			}
			ch, err := e.intermediateChoice(name, arr, producers[name][0], consumers[name][0])
			if err != nil {
				return nil, err
			}
			m.Choices = append(m.Choices, e.boundFilter(ch, &m.BoundPruned))
		}
	}
	return m, nil
}

// PlacementVarCount returns the total number of binary λ variables needed
// for the model with the paper's ⌈log2(m)⌉-per-array encoding.
func (m *Model) PlacementVarCount() int {
	n := 0
	for _, ch := range m.Choices {
		n += lambdaBits(len(ch.Candidates))
	}
	return n
}

func lambdaBits(m int) int {
	if m <= 1 {
		return 0
	}
	bits := 0
	for (1 << bits) < m {
		bits++
	}
	return bits
}

// String renders the model in the style of Fig. 4(a).
func (m *Model) String() string {
	var b strings.Builder
	for _, ch := range m.Choices {
		fmt.Fprintf(&b, "%s (%s):\n", ch.Name, ch.Array.Kind)
		for i, c := range ch.Candidates {
			fmt.Fprintf(&b, "  [%d] %s\n", i, c.Describe())
		}
	}
	return b.String()
}

// Describe renders one candidate compactly.
func (c *Candidate) Describe() string {
	if c.InMemory {
		return fmt.Sprintf("in memory, buffer %s%s = %s", c.Array, c.MemBuf, c.MemBuf.Bytes)
	}
	var parts []string
	if c.Read != nil {
		parts = append(parts, fmt.Sprintf("read %s, buffer %s%s", c.Read.Pos.Label, c.Array, c.Read.Buf))
	}
	if c.Write != nil {
		w := fmt.Sprintf("write %s, buffer %s%s", c.Write.Pos.Label, c.Array, c.Write.Buf)
		if c.RMWRead {
			w += ", read required"
		}
		parts = append(parts, w)
	}
	return strings.Join(parts, "; ")
}

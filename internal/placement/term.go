// Package placement implements step 2 of the out-of-core code generation
// algorithm: for every array of the tiled program it enumerates the legal
// placements of disk read/write statements (Sec. 4.1 of the paper) and
// attaches to each candidate the symbolic disk-I/O-cost and memory-cost
// expressions over the tile-size variables (Sec. 4.2). The resulting model
// is what the nlp package encodes for the DCS solver.
package placement

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a product-form symbolic expression over the tile-size variables:
//
//	Coeff × Π_{x∈Fulls} N_x × Π_{x∈Tiles} T_x × Π_{x∈Trips} ceil(N_x/T_x)
//
// All disk-cost, op-count, and memory-cost expressions of the model are
// single Terms; the objective and the memory constraint are sums of
// λ-selected Terms. Factors may repeat (multiset semantics).
type Term struct {
	Coeff float64
	Fulls []string
	Tiles []string
	Trips []string
}

// One is the multiplicative identity term.
func One() Term { return Term{Coeff: 1} }

// Zero is the additive identity term.
func Zero() Term { return Term{Coeff: 0} }

// IsZero reports whether the term is identically zero.
func (t Term) IsZero() bool { return t.Coeff == 0 }

// Mul returns the product of two terms.
func (t Term) Mul(u Term) Term {
	return Term{
		Coeff: t.Coeff * u.Coeff,
		Fulls: concat(t.Fulls, u.Fulls),
		Tiles: concat(t.Tiles, u.Tiles),
		Trips: concat(t.Trips, u.Trips),
	}
}

// Scale returns the term multiplied by a constant.
func (t Term) Scale(c float64) Term {
	t.Coeff *= c
	return t
}

func concat(a, b []string) []string {
	if len(a) == 0 {
		return append([]string(nil), b...)
	}
	out := append([]string(nil), a...)
	return append(out, b...)
}

// Eval evaluates the term at the given tile sizes.
func (t Term) Eval(tiles map[string]int64, ranges map[string]int64) float64 {
	v := t.Coeff
	for _, x := range t.Fulls {
		v *= float64(ranges[x])
	}
	for _, x := range t.Tiles {
		v *= float64(tiles[x])
	}
	for _, x := range t.Trips {
		n, tl := ranges[x], tiles[x]
		v *= float64((n + tl - 1) / tl)
	}
	return v
}

// EvalTileOne evaluates the term with every tile size set to 1 (the
// feasibility probe of the enumeration: tiles contribute 1, trips N_x).
func (t Term) EvalTileOne(ranges map[string]int64) float64 {
	v := t.Coeff
	for _, x := range t.Fulls {
		v *= float64(ranges[x])
	}
	for _, x := range t.Trips {
		v *= float64(ranges[x])
	}
	return v
}

// LowerBound returns a value the term can never go below over any tile
// assignment 1 ≤ T_x ≤ N_x: full-range factors contribute N_x exactly;
// each Tile/Trip factor pair over the same index contributes at least N_x
// (T_x · ceil(N_x/T_x) ≥ N_x — the communication-lower-bound argument of
// Dinh & Demmel applied to the product form); unpaired Tile or Trip
// factors are only known to be ≥ 1. Requires Coeff ≥ 0 (all cost terms
// are).
func (t Term) LowerBound(ranges map[string]int64) float64 {
	v := t.Coeff
	for _, x := range t.Fulls {
		v *= float64(ranges[x])
	}
	tiles := multiset(t.Tiles)
	for x, n := range multiset(t.Trips) {
		for i := 0; i < min(n, tiles[x]); i++ {
			v *= float64(ranges[x])
		}
	}
	return v
}

// String renders the term for model dumps: "8 * Nn/Tn * Ti * Tj".
func (t Term) String() string {
	parts := []string{trimFloat(t.Coeff)}
	for _, x := range sorted(t.Fulls) {
		parts = append(parts, "N"+x)
	}
	for _, x := range sorted(t.Tiles) {
		parts = append(parts, "T"+x)
	}
	for _, x := range sorted(t.Trips) {
		parts = append(parts, fmt.Sprintf("ceil(N%s/T%s)", x, x))
	}
	return strings.Join(parts, " * ")
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

func sorted(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// DividesLE reports whether a ≤ b is guaranteed for every tile assignment,
// by cancelling b's factors against a's: identical factors cancel; a
// leftover T_x or ceil(N_x/T_x) in a cancels against an N_x in b (both are
// at most N_x). If a retains uncancelled factors the comparison fails
// (conservatively not comparable). Used for dominance pruning.
func DividesLE(a, b Term) bool {
	if a.Coeff <= 0 || b.Coeff <= 0 {
		return false
	}
	af, bf := multiset(a.Fulls), multiset(b.Fulls)
	at, bt := multiset(a.Tiles), multiset(b.Tiles)
	ac, bc := multiset(a.Trips), multiset(b.Trips)
	cancel(af, bf)
	cancel(at, bt)
	cancel(ac, bc)
	// a's leftover tiles/trips may cancel against b's leftover fulls.
	for x, n := range at {
		take := min(n, bf[x])
		at[x] -= take
		bf[x] -= take
	}
	for x, n := range ac {
		take := min(n, bf[x])
		ac[x] -= take
		bf[x] -= take
	}
	// Any remaining factor on a's side could exceed b; reject.
	if total(af)+total(at)+total(ac) > 0 {
		return false
	}
	// Remaining factors on b's side are all ≥ 1, so b only grows.
	return a.Coeff <= b.Coeff
}

func multiset(xs []string) map[string]int {
	m := map[string]int{}
	for _, x := range xs {
		m[x]++
	}
	return m
}

func cancel(a, b map[string]int) {
	for x, n := range a {
		take := min(n, b[x])
		a[x] -= take
		b[x] -= take
	}
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

package placement

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomTerm draws a term over a small fixed index universe.
type randomTerm Term

var quickIndices = []string{"i", "j", "k", "m"}

func (randomTerm) Generate(r *rand.Rand, _ int) reflect.Value {
	t := Term{Coeff: float64(1 + r.Intn(16))}
	for _, x := range quickIndices {
		for r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				t.Fulls = append(t.Fulls, x)
			case 1:
				t.Tiles = append(t.Tiles, x)
			default:
				t.Trips = append(t.Trips, x)
			}
		}
	}
	return reflect.ValueOf(randomTerm(t))
}

func quickEnv(seed int64) (map[string]int64, map[string]int64) {
	r := rand.New(rand.NewSource(seed))
	ranges := map[string]int64{}
	tiles := map[string]int64{}
	for _, x := range quickIndices {
		ranges[x] = 2 + r.Int63n(60)
		tiles[x] = 1 + r.Int63n(ranges[x])
	}
	return ranges, tiles
}

// Property: Mul evaluates as the product of the factors, for any tile
// assignment.
func TestQuickTermMulHomomorphic(t *testing.T) {
	f := func(a, b randomTerm, seed int64) bool {
		ranges, tiles := quickEnv(seed)
		ta, tb := Term(a), Term(b)
		prod := ta.Mul(tb).Eval(tiles, ranges)
		want := ta.Eval(tiles, ranges) * tb.Eval(tiles, ranges)
		return math.Abs(prod-want) <= 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mul is commutative under evaluation.
func TestQuickTermMulCommutative(t *testing.T) {
	f := func(a, b randomTerm, seed int64) bool {
		ranges, tiles := quickEnv(seed)
		ta, tb := Term(a), Term(b)
		return ta.Mul(tb).Eval(tiles, ranges) == tb.Mul(ta).Eval(tiles, ranges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (soundness of dominance pruning): whenever DividesLE(a, b)
// holds, a evaluates to at most b for EVERY tile assignment.
func TestQuickDividesLESound(t *testing.T) {
	f := func(a, b randomTerm, seed1, seed2, seed3 int64) bool {
		ta, tb := Term(a), Term(b)
		if !DividesLE(ta, tb) {
			return true // nothing claimed
		}
		for _, seed := range []int64{seed1, seed2, seed3} {
			ranges, tiles := quickEnv(seed)
			if ta.Eval(tiles, ranges) > tb.Eval(tiles, ranges)*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: EvalTileOne equals Eval with every tile forced to 1.
func TestQuickEvalTileOneConsistent(t *testing.T) {
	f := func(a randomTerm, seed int64) bool {
		ranges, _ := quickEnv(seed)
		ones := map[string]int64{}
		for _, x := range quickIndices {
			ones[x] = 1
		}
		ta := Term(a)
		return ta.EvalTileOne(ranges) == ta.Eval(ones, ranges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a term is monotone non-increasing in any tile size along its
// Trips factors and non-decreasing along its Tiles factors... both can
// appear, so check the guaranteed direction: padded size ceil(N/T)·T ≥ N
// — evaluate the canonical padded-size term and compare to N.
func TestQuickPaddedSizeAtLeastExact(t *testing.T) {
	f := func(seed int64) bool {
		ranges, tiles := quickEnv(seed)
		for _, x := range quickIndices {
			padded := Term{Coeff: 1, Tiles: []string{x}, Trips: []string{x}}.Eval(tiles, ranges)
			if padded < float64(ranges[x]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package placement

import (
	"fmt"

	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/tiling"
)

// enumerator carries the shared state of one enumeration run.
type enumerator struct {
	p   *loops.Program
	cfg machine.Config
	opt Options
}

// bufferIndices returns the index labels over which an array's buffers are
// computed. For intermediates this is the pre-fusion index set: a fused
// intermediate's storage re-expands to tile extent along fused dims.
func bufferIndices(arr *loops.Array) []string {
	return arr.OrigIndices
}

// rawPositions walks the extended path of a statement site bottom-up and
// returns the legal placement positions for an array with the given buffer
// indices, applying the three pruning rules of Sec. 4.1:
//
//  1. positions making the buffer scalar or vector are skipped (in-memory
//     products should be matrix-matrix operations);
//  2. positions immediately surrounded by a redundant loop are skipped
//     (hoisting above the redundant loop is never worse);
//  3. once the buffer no longer fits in memory even at tile size one, the
//     walk stops (positions further up only grow the buffer).
//
// minDepth bounds the walk for intermediates (their I/O must stay inside
// the producer/consumer's lowest common ancestor loop).
func (e *enumerator) rawPositions(site tiling.LeafSite, bufIdx []string, minDepth int) []IOPlacement {
	ep := site.ExtendedPath()
	idxSet := map[string]bool{}
	for _, x := range bufIdx {
		idxSet[x] = true
	}
	// Locate each buffer index's tiling and intra entries on the path.
	tAt := map[string]int{}
	iAt := map[string]int{}
	for j, en := range ep {
		if en.Intra {
			iAt[en.Index] = j
		} else {
			tAt[en.Index] = j
		}
	}
	// I/O statements sit between tiling loops: the innermost position is
	// immediately above the leaf's intra-tile block (the "leaf" placement
	// of Fig. 4), never inside it — an I/O statement inside intra-tile
	// loops would move the same tile repeatedly in tiny pieces.
	var out []IOPlacement
	for k := len(site.Path); k >= minDepth; k-- {
		dims := make([]BufDim, len(bufIdx))
		nonUnit := 0
		for i, x := range bufIdx {
			ti, okT := tAt[x]
			ii, okI := iAt[x]
			if !okT || !okI {
				// The index's loops do not enclose this statement; the
				// buffer must span the full range (cannot happen for
				// legal programs, but keep it safe).
				dims[i] = BufDim{Index: x, Class: ExtFull}
				nonUnit++
				continue
			}
			switch {
			case ii < k:
				dims[i] = BufDim{Index: x, Class: ExtOne}
			case ti < k:
				dims[i] = BufDim{Index: x, Class: ExtTile}
				nonUnit++
			default:
				dims[i] = BufDim{Index: x, Class: ExtFull}
				nonUnit++
			}
		}
		// Rule 1: keep the in-memory version at least two-dimensional.
		if nonUnit < min(2, len(bufIdx)) {
			continue
		}
		buf := bufferTerm(dims, e.cfg.ElemSize)
		// Rule 3: feasibility probe at tile size one.
		if buf.EvalTileOne(e.p.Ranges) > float64(e.cfg.MemoryLimit) {
			break
		}
		// Rule 2: skip positions immediately surrounded by a redundant loop
		// (unless this is the innermost legal depth for an intermediate).
		if k > minDepth && k > 0 && !idxSet[ep[k-1].Index] {
			continue
		}
		ops := One()
		var redundant []tiling.PathEntry
		for j := 0; j < k; j++ {
			en := ep[j]
			if en.Intra {
				ops.Tiles = append(ops.Tiles, en.Index)
			} else {
				ops.Trips = append(ops.Trips, en.Index)
			}
			if !idxSet[en.Index] {
				redundant = append(redundant, en)
			}
		}
		out = append(out, IOPlacement{
			Pos:       Position{Site: site, Depth: k, Label: positionLabel(site, ep, k)},
			Buf:       BufferSpec{Dims: dims, Bytes: buf},
			Bytes:     ops.Mul(buf),
			Ops:       ops,
			Redundant: redundant,
		})
	}
	return out
}

// bufferTerm builds the symbolic byte size of a buffer.
func bufferTerm(dims []BufDim, elemSize int64) Term {
	t := Term{Coeff: float64(elemSize)}
	for _, d := range dims {
		switch d.Class {
		case ExtTile:
			t.Tiles = append(t.Tiles, d.Index)
		case ExtFull:
			t.Fulls = append(t.Fulls, d.Index)
		}
	}
	return t
}

func positionLabel(site tiling.LeafSite, ep []tiling.PathEntry, k int) string {
	switch {
	case k == len(site.Path):
		return "leaf"
	case k >= len(ep):
		return "innermost"
	default:
		return "above " + ep[k].String()
	}
}

// pruneDominated removes placements that are pointwise no better than
// another placement in both total bytes moved and buffer size.
func (e *enumerator) pruneDominated(ps []IOPlacement) []IOPlacement {
	if e.opt.DisableDominancePruning {
		return ps
	}
	var out []IOPlacement
	for i, a := range ps {
		dominated := false
		for j, b := range ps {
			if i == j {
				continue
			}
			betterOrEqual := DividesLE(b.Bytes, a.Bytes) &&
				DividesLE(b.Buf.Bytes, a.Buf.Bytes) &&
				DividesLE(b.Ops, a.Ops)
			if betterOrEqual {
				// Break ties deterministically: when a and b are mutually
				// comparable (identical costs), keep only the first.
				if j > i && DividesLE(a.Bytes, b.Bytes) &&
					DividesLE(a.Buf.Bytes, b.Buf.Bytes) && DividesLE(a.Ops, b.Ops) {
					continue
				}
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

// boundFilter drops candidates whose analytic cost lower bound exceeds
// the incumbent objective (Options.BoundIncumbent): no selection
// containing such a candidate can beat the incumbent, since the objective
// sums non-negative per-choice costs. The incumbent's own candidates
// always survive (their bound is at most their actual contribution, which
// is at most the incumbent total), so a feasible solution at least as
// good as the incumbent always remains in the pruned space. Defensively,
// a choice always keeps its cheapest-bound candidate.
func (e *enumerator) boundFilter(ch Choice, pruned *int) Choice {
	if e.opt.BoundIncumbent <= 0 || len(ch.Candidates) <= 1 {
		return ch
	}
	bounds := make([]float64, len(ch.Candidates))
	minIdx := 0
	for i := range ch.Candidates {
		bounds[i] = ch.Candidates[i].LowerBoundSeconds(e.p.Ranges, e.cfg)
		if bounds[i] < bounds[minIdx] {
			minIdx = i
		}
	}
	var kept []Candidate
	for i := range ch.Candidates {
		if bounds[i] <= e.opt.BoundIncumbent {
			kept = append(kept, ch.Candidates[i])
		} else {
			*pruned++
		}
	}
	if len(kept) == 0 {
		kept = append(kept, ch.Candidates[minIdx])
		*pruned--
	}
	ch.Candidates = kept
	return ch
}

// inputChoice enumerates read placements for an input array at one
// consumer site.
func (e *enumerator) inputChoice(name string, arr *loops.Array, site tiling.LeafSite) (Choice, error) {
	ps := e.pruneDominated(e.rawPositions(site, bufferIndices(arr), 0))
	if len(ps) == 0 {
		return Choice{}, fmt.Errorf("placement: no feasible read placement for input %q (memory limit too small?)", name)
	}
	ch := Choice{Name: name, Array: arr}
	for i := range ps {
		p := ps[i]
		ch.Candidates = append(ch.Candidates, Candidate{
			Array: arr.Name,
			Read:  &p,
			Label: "read " + p.Pos.Label,
		})
	}
	return ch, nil
}

// outputChoice enumerates write placements for an output array at one
// producer site. A write surrounded by a redundant loop accumulates across
// that loop's iterations, so the tile must be read back before each
// accumulation (read-modify-write) and the disk array must be zeroed
// first. When the output has several producer statements (a sum of
// products), every site accumulates into the shared disk array:
// read-modify-write is forced everywhere, and the single zero-init pass is
// charged to the first site only.
func (e *enumerator) outputChoice(name string, arr *loops.Array, site tiling.LeafSite, forceRMW, chargeInit bool) (Choice, error) {
	ps := e.pruneDominated(e.rawPositions(site, bufferIndices(arr), 0))
	if len(ps) == 0 {
		return Choice{}, fmt.Errorf("placement: no feasible write placement for output %q (memory limit too small?)", name)
	}
	ch := Choice{Name: name, Array: arr}
	for i := range ps {
		p := ps[i]
		c := Candidate{
			Array: arr.Name,
			Write: &p,
			Label: "write " + p.Pos.Label,
		}
		if len(p.Redundant) > 0 || forceRMW {
			c.RMWRead = true
			if chargeInit {
				c.InitZero = e.initZeroPass(arr)
			}
			c.Label += " (read required)"
		}
		ch.Candidates = append(ch.Candidates, c)
	}
	return ch, nil
}

// initZeroPass builds the cost of writing the whole (padded) disk array
// once with zeros, tile by tile.
func (e *enumerator) initZeroPass(arr *loops.Array) *IOPlacement {
	bytes := Term{Coeff: float64(e.cfg.ElemSize)}
	ops := One()
	for _, x := range bufferIndices(arr) {
		bytes.Tiles = append(bytes.Tiles, x)
		bytes.Trips = append(bytes.Trips, x)
		ops.Trips = append(ops.Trips, x)
	}
	return &IOPlacement{
		Pos:   Position{Label: "init pass"},
		Bytes: bytes,
		Ops:   ops,
	}
}

// intermediateChoice enumerates the strategies for an intermediate array:
// keep it in memory, or write it to disk after production and read it back
// before consumption, with both I/O statements constrained to lie inside
// the lowest common ancestor loop of producer and consumer.
func (e *enumerator) intermediateChoice(name string, arr *loops.Array, prod, cons tiling.LeafSite) (Choice, error) {
	ch := Choice{Name: name, Array: arr}
	lca := tiling.CommonPrefixLen(prod.Path, cons.Path)

	// In-memory candidate: the buffer lives at the LCA; dims with tiling
	// loops above (or at) the LCA hold one tile, the rest the full range.
	memDims := make([]BufDim, 0, len(bufferIndices(arr)))
	prefix := map[string]bool{}
	for _, l := range prod.Path[:lca] {
		prefix[l.Index] = true
	}
	for _, x := range bufferIndices(arr) {
		cls := ExtFull
		if prefix[x] {
			cls = ExtTile
		}
		memDims = append(memDims, BufDim{Index: x, Class: cls})
	}
	memBuf := BufferSpec{Dims: memDims, Bytes: bufferTerm(memDims, e.cfg.ElemSize)}
	if memBuf.Bytes.EvalTileOne(e.p.Ranges) <= float64(e.cfg.MemoryLimit) {
		ch.Candidates = append(ch.Candidates, Candidate{
			Array:    arr.Name,
			InMemory: true,
			MemBuf:   &memBuf,
			Label:    "in memory",
		})
	}

	writes := e.pruneDominated(e.rawPositions(prod, bufferIndices(arr), lca))
	reads := e.pruneDominated(e.rawPositions(cons, bufferIndices(arr), lca))
	for i := range writes {
		for j := range reads {
			w, r := writes[i], reads[j]
			c := Candidate{
				Array: arr.Name,
				Write: &w,
				Read:  &r,
				Label: fmt.Sprintf("disk: write %s, read %s", w.Pos.Label, r.Pos.Label),
			}
			if len(w.Redundant) > 0 {
				c.RMWRead = true
				c.InitZero = e.initZeroPass(arr)
				c.Label += " (read required)"
			}
			ch.Candidates = append(ch.Candidates, c)
		}
	}
	if len(ch.Candidates) == 0 {
		return Choice{}, fmt.Errorf("placement: no feasible strategy for intermediate %q (memory limit too small?)", name)
	}
	return ch, nil
}

package placement

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// candidateCostAt evaluates a candidate's true modelled I/O time at one
// tile assignment (the same formula as nlp's objective contribution).
func candidateCostAt(c *Candidate, tiles, ranges map[string]int64, cfg machine.Config) float64 {
	d := cfg.Disk
	total := 0.0
	for _, tm := range c.ReadBytes() {
		total += tm.Eval(tiles, ranges) / d.ReadBandwidth
	}
	for _, tm := range c.WriteBytes() {
		total += tm.Eval(tiles, ranges) / d.WriteBandwidth
	}
	for _, tm := range append(c.ReadOps(), c.WriteOps()...) {
		total += tm.Eval(tiles, ranges) * d.SeekTime
	}
	return total
}

// tileSamples builds a deterministic set of tile assignments covering the
// corners (all 1, all N) and log-uniform random interior points.
func tileSamples(ranges map[string]int64, n int) []map[string]int64 {
	rng := rand.New(rand.NewSource(7))
	ones, full := map[string]int64{}, map[string]int64{}
	for x, nx := range ranges {
		ones[x] = 1
		full[x] = nx
	}
	out := []map[string]int64{ones, full}
	for i := 0; i < n; i++ {
		tiles := map[string]int64{}
		for x, nx := range ranges {
			v := int64(math.Exp(rng.Float64() * math.Log(float64(nx))))
			if v < 1 {
				v = 1
			}
			if v > nx {
				v = nx
			}
			tiles[x] = v
		}
		out = append(out, tiles)
	}
	return out
}

// TestLowerBoundBelowTrueCost checks, over the full two-index candidate
// cross product, that the analytic lower bound never exceeds the true
// candidate cost at any sampled tile assignment — the soundness property
// behind incumbent pruning.
func TestLowerBoundBelowTrueCost(t *testing.T) {
	m := fig4Model(t)
	ranges := m.Prog.Ranges
	samples := tileSamples(ranges, 25)
	checked := 0
	for _, ch := range m.Choices {
		for i := range ch.Candidates {
			c := &ch.Candidates[i]
			lb := c.LowerBoundSeconds(ranges, m.Cfg)
			for _, tiles := range samples {
				cost := candidateCostAt(c, tiles, ranges, m.Cfg)
				if lb > cost*(1+1e-9) {
					t.Fatalf("%s %q: lower bound %g exceeds true cost %g at tiles %v",
						ch.Name, c.Label, lb, cost, tiles)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no candidates checked")
	}
}

// TestTermLowerBound checks the per-term bound on hand-built terms.
func TestTermLowerBound(t *testing.T) {
	ranges := map[string]int64{"i": 100, "j": 40}
	// T_i · ceil(N_i/T_i) ≥ N_i: the paired factors bound to the range.
	paired := Term{Coeff: 2, Tiles: []string{"i"}, Trips: []string{"i"}}
	if got := paired.LowerBound(ranges); got != 200 {
		t.Fatalf("paired bound = %g, want 200", got)
	}
	// Unpaired tile or trip factors only guarantee ≥ 1.
	lone := Term{Coeff: 3, Tiles: []string{"i"}, Trips: []string{"j"}}
	if got := lone.LowerBound(ranges); got != 3 {
		t.Fatalf("unpaired bound = %g, want 3", got)
	}
	// Full-range factors multiply in exactly.
	fullT := Term{Coeff: 1, Fulls: []string{"i", "j"}}
	if got := fullT.LowerBound(ranges); got != 4000 {
		t.Fatalf("fulls bound = %g, want 4000", got)
	}
	// The bound never exceeds the evaluation anywhere.
	for _, tm := range []Term{paired, lone, fullT,
		{Coeff: 5, Fulls: []string{"j"}, Tiles: []string{"i", "i"}, Trips: []string{"i"}}} {
		lb := tm.LowerBound(ranges)
		for _, tiles := range tileSamples(ranges, 30) {
			if v := tm.Eval(tiles, ranges); lb > v*(1+1e-9) {
				t.Fatalf("term %v: bound %g > eval %g at %v", tm, lb, v, tiles)
			}
		}
	}
}

// TestBoundFilterInvariants checks the incumbent filter's contract: a
// huge incumbent prunes nothing; a tight incumbent prunes exactly the
// candidates whose bound exceeds it, never empties a choice, and counts
// what it dropped.
func TestBoundFilterInvariants(t *testing.T) {
	base := fig4Model(t)
	enum := func(incumbent float64) *Model {
		m, err := Enumerate(base.Tree, base.Cfg, Options{BoundIncumbent: incumbent})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	loose := enum(math.MaxFloat64)
	if loose.BoundPruned != 0 {
		t.Fatalf("infinite incumbent pruned %d candidates", loose.BoundPruned)
	}
	for i, ch := range loose.Choices {
		if len(ch.Candidates) != len(base.Choices[i].Candidates) {
			t.Fatalf("%s: loose incumbent changed the candidate set", ch.Name)
		}
	}

	// An impossibly tight incumbent: everything but the cheapest-bound
	// candidate per choice goes.
	tight := enum(1e-12)
	totalBase, totalTight := 0, 0
	for i, ch := range tight.Choices {
		if len(ch.Candidates) == 0 {
			t.Fatalf("%s: filter emptied the choice", ch.Name)
		}
		totalBase += len(base.Choices[i].Candidates)
		totalTight += len(ch.Candidates)
	}
	if got := totalBase - totalTight; got != tight.BoundPruned {
		t.Fatalf("BoundPruned = %d, candidate diff = %d", tight.BoundPruned, got)
	}
	if tight.BoundPruned == 0 {
		t.Fatal("tight incumbent pruned nothing")
	}

	// A mid-range incumbent: every pruned candidate's bound must exceed
	// it, every kept candidate's bound must not (or be the choice's
	// cheapest).
	ranges := base.Prog.Ranges
	mid := 0.0
	for _, ch := range base.Choices {
		min := math.MaxFloat64
		for i := range ch.Candidates {
			if lb := ch.Candidates[i].LowerBoundSeconds(ranges, base.Cfg); lb < min {
				min = lb
			}
		}
		mid += min
	}
	mid *= 4
	pruned := enum(mid)
	for ci, ch := range pruned.Choices {
		keptLabels := map[string]bool{}
		minLB := math.MaxFloat64
		for i := range ch.Candidates {
			keptLabels[ch.Candidates[i].Label] = true
			if lb := ch.Candidates[i].LowerBoundSeconds(ranges, base.Cfg); lb < minLB {
				minLB = lb
			}
		}
		for i := range base.Choices[ci].Candidates {
			c := &base.Choices[ci].Candidates[i]
			lb := c.LowerBoundSeconds(ranges, base.Cfg)
			if keptLabels[c.Label] {
				if lb > mid && len(ch.Candidates) > 1 {
					t.Fatalf("%s %q: kept with bound %g > incumbent %g", ch.Name, c.Label, lb, mid)
				}
			} else if lb <= mid {
				t.Fatalf("%s %q: pruned although bound %g ≤ incumbent %g", ch.Name, c.Label, lb, mid)
			}
		}
	}
}
